#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace via {
namespace {

TEST(SplitMix, DeterministicAndMixing) {
  EXPECT_EQ(splitmix64(1), splitmix64(1));
  EXPECT_NE(splitmix64(1), splitmix64(2));
  // Adjacent inputs should map to wildly different outputs.
  const auto a = splitmix64(100);
  const auto b = splitmix64(101);
  EXPECT_GT(std::popcount(a ^ b), 10);
}

TEST(HashMix, ArityVariantsDistinct) {
  EXPECT_NE(hash_mix(1, 2), hash_mix(2, 1));
  EXPECT_NE(hash_mix(1, 2, 3), hash_mix(1, 2));
  EXPECT_NE(hash_mix(1, 2, 3, 4), hash_mix(1, 2, 3));
  EXPECT_EQ(hash_mix(7, 8, 9), hash_mix(7, 8, 9));
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, ReseedResetsStream) {
  Rng a(42);
  const auto first = a();
  a.reseed(42);
  EXPECT_EQ(a(), first);
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIndexBoundsAndCoverage) {
  Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_index(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformIndexOne) {
  Rng rng(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_index(1), 0u);
}

TEST(Rng, GaussianMoments) {
  Rng rng(13);
  double sum = 0.0, sum2 = 0.0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.02);
}

TEST(Rng, GaussianShifted) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) sum += rng.gaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, ExponentialMean) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) {
    const double e = rng.exponential(3.0);
    EXPECT_GE(e, 0.0);
    sum += e;
  }
  EXPECT_NEAR(sum / n, 3.0, 0.05);
}

TEST(Rng, LognormalMeanAndCv) {
  Rng rng(19);
  const double mean = 5.0, cv = 0.5;
  double sum = 0.0, sum2 = 0.0;
  const int n = 400'000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.lognormal_mean_cv(mean, cv);
    EXPECT_GT(v, 0.0);
    sum += v;
    sum2 += v * v;
  }
  const double m = sum / n;
  const double sd = std::sqrt(sum2 / n - m * m);
  EXPECT_NEAR(m, mean, 0.05);
  EXPECT_NEAR(sd / m, cv, 0.02);
}

TEST(Rng, LognormalZeroMeanIsZero) {
  Rng rng(19);
  EXPECT_EQ(rng.lognormal_mean_cv(0.0, 0.5), 0.0);
}

TEST(Rng, ParetoTailHeavierThanExponential) {
  Rng rng(23);
  const int n = 100'000;
  int pareto_big = 0;
  for (int i = 0; i < n; ++i) {
    if (rng.pareto(1.0, 1.1) > 50.0) ++pareto_big;
  }
  // A Pareto(1, 1.1) exceeds 50 with probability 50^-1.1 ~ 1.3%.
  EXPECT_GT(pareto_big, n / 500);
  EXPECT_LT(pareto_big, n / 20);
}

TEST(Rng, ParetoAtLeastScale) {
  Rng rng(29);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
}

TEST(Rng, BernoulliRate) {
  Rng rng(31);
  int hits = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, WeightedIndexProportional) {
  Rng rng(37);
  const std::vector<double> w{1.0, 3.0, 6.0};
  std::array<int, 3> counts{};
  const int n = 100'000;
  for (int i = 0; i < n; ++i) ++counts[rng.weighted_index(w)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.6, 0.01);
}

TEST(HashedDraws, DeterministicAndUniform) {
  EXPECT_EQ(hashed_uniform(123), hashed_uniform(123));
  EXPECT_NE(hashed_uniform(123), hashed_uniform(124));
  double sum = 0.0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) sum += hashed_uniform(static_cast<std::uint64_t>(i));
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(HashedDraws, GaussianMoments) {
  double sum = 0.0, sum2 = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    const double g = hashed_gaussian(static_cast<std::uint64_t>(i) * 2654435761ULL);
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Zipf, PmfSumsToOne) {
  const ZipfSampler zipf(100, 1.0);
  double total = 0.0;
  for (std::size_t i = 0; i < zipf.size(); ++i) total += zipf.pmf(i);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Zipf, RankOrdering) {
  const ZipfSampler zipf(50, 0.9);
  for (std::size_t i = 1; i < zipf.size(); ++i) EXPECT_LT(zipf.pmf(i), zipf.pmf(i - 1));
}

TEST(Zipf, SamplingMatchesPmf) {
  const ZipfSampler zipf(10, 1.2);
  Rng rng(41);
  std::array<int, 10> counts{};
  const int n = 200'000;
  for (int i = 0; i < n; ++i) ++counts[zipf.sample(rng)];
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_NEAR(counts[i] / static_cast<double>(n), zipf.pmf(i), 0.01) << "rank " << i;
  }
}

// Property sweep: the bounded sampler is unbiased for many bounds.
class UniformIndexSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(UniformIndexSweep, MeanIsCentered) {
  const std::uint64_t n = GetParam();
  Rng rng(hash_mix(n, 5));
  double sum = 0.0;
  const int draws = 50'000;
  for (int i = 0; i < draws; ++i) sum += static_cast<double>(rng.uniform_index(n));
  const double expected = static_cast<double>(n - 1) / 2.0;
  EXPECT_NEAR(sum / draws, expected, 0.02 * static_cast<double>(n) + 0.05);
}

INSTANTIATE_TEST_SUITE_P(Bounds, UniformIndexSweep,
                         ::testing::Values(2, 3, 7, 10, 100, 1000, 4096));

}  // namespace
}  // namespace via
