// DESIGN.md §6i: memory-bounded state.  Covers the PairStateStore eviction
// passes (determinism at any stripe count), the snapshot memo budget
// (identical bits from scratch-served views), and the ViaPolicy-level
// wiring (caps enforced at refresh commit, memory_stats populated,
// deterministic replay with every bound engaged).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <vector>

#include "core/model_snapshot.h"
#include "core/pair_state_store.h"
#include "core/via_policy.h"
#include "util/rng.h"

namespace via {
namespace {

// ---------------------------------------------------------------- store

std::unique_ptr<PairStateStore> make_store(std::size_t stripes) {
  return std::make_unique<PairStateStore>(99, stripes, BudgetConfig{}, 1.0);
}

void insert_pair(PairStateStore& store, std::uint64_t key, std::uint64_t period) {
  auto& stripe = store.stripe(key);
  const std::lock_guard lock(stripe.mutex);
  stripe.pairs[key].period = period;
}

std::set<std::uint64_t> resident_keys(PairStateStore& store) {
  std::set<std::uint64_t> keys;
  for (std::size_t i = 0; i < store.stripe_count(); ++i) {
    auto& stripe = store.stripe_at(i);
    const std::lock_guard lock(stripe.mutex);
    stripe.pairs.for_each(
        [&](std::uint64_t key, const PairServingState&) { keys.insert(key); });
  }
  return keys;
}

TEST(PairStateStore, EvictStaleDropsOldKeepsFreshAndNeverArmed) {
  auto store = make_store(4);
  insert_pair(*store, 1, 2);   // stale at period 10, ttl 3
  insert_pair(*store, 2, 8);   // fresh
  insert_pair(*store, 3, 7);   // exactly at the ttl boundary: evicted
  {
    auto& stripe = store->stripe(4);
    const std::lock_guard lock(stripe.mutex);
    (void)stripe.pairs[4];  // never armed (period stays ~0ULL): kept
  }
  EXPECT_EQ(store->evict_stale(10, 3), 2);
  const auto keys = resident_keys(*store);
  EXPECT_EQ(keys, (std::set<std::uint64_t>{2, 4}));
  EXPECT_EQ(store->evicted_total(), 2);
  EXPECT_EQ(store->evict_stale(10, 0), 0);  // ttl 0 = disabled
}

TEST(PairStateStore, ResidentCapEvictsOldestArmedFirst) {
  auto store = make_store(1);
  for (std::uint64_t k = 1; k <= 10; ++k) insert_pair(*store, k, k);
  EXPECT_EQ(store->enforce_resident_cap(4), 6);
  EXPECT_EQ(resident_keys(*store), (std::set<std::uint64_t>{7, 8, 9, 10}));
  EXPECT_EQ(store->resident_pairs(), 4u);
  EXPECT_EQ(store->enforce_resident_cap(0), 0);  // 0 = unbounded
}

TEST(PairStateStore, EvictionDeterministicAcrossStripeCounts) {
  // The victim set must be a pure function of (armed period, pair key) —
  // identical no matter how the pairs are spread over stripes.
  for (const auto& [ttl, cap] : {std::pair<std::uint64_t, std::size_t>{4, 0},
                                std::pair<std::uint64_t, std::size_t>{0, 60},
                                std::pair<std::uint64_t, std::size_t>{6, 40}}) {
    auto one = make_store(1);
    auto four = make_store(4);
    auto sixtyfour = make_store(64);
    for (std::uint64_t i = 0; i < 200; ++i) {
      const std::uint64_t key = hash_mix(0xfeed, i);
      const std::uint64_t period = hash_mix(key, 0x60) % 12;
      insert_pair(*one, key, period);
      insert_pair(*four, key, period);
      insert_pair(*sixtyfour, key, period);
    }
    for (auto* store : {one.get(), four.get(), sixtyfour.get()}) {
      if (ttl > 0) store->evict_stale(12, ttl);
      if (cap > 0) store->enforce_resident_cap(cap);
    }
    const auto survivors = resident_keys(*one);
    EXPECT_EQ(resident_keys(*four), survivors);
    EXPECT_EQ(resident_keys(*sixtyfour), survivors);
  }
}

// ------------------------------------------------------------- snapshot

class MemoBudgetTest : public ::testing::Test {
 protected:
  MemoBudgetTest() {
    bounce_a_ = options_.intern_bounce(0);
    bounce_b_ = options_.intern_bounce(1);
    candidates_ = {RelayOptionTable::direct_id(), bounce_a_, bounce_b_};
  }

  [[nodiscard]] HistoryWindow filled_window() const {
    HistoryWindow window(&options_);
    for (AsId src = 1; src <= 6; ++src) {
      for (int i = 0; i < 4; ++i) {
        Observation o;
        o.src_as = src;
        o.dst_as = 100;
        o.option = RelayOptionTable::direct_id();
        o.perf = {250.0 + src + i, 0.5, 4.0};
        window.add(o);
        o.option = bounce_a_;
        o.perf = {110.0 + src + i, 0.4, 3.0};
        window.add(o);
        o.option = bounce_b_;
        o.perf = {190.0 + src + i, 0.6, 5.0};
        window.add(o);
      }
    }
    return window;
  }

  [[nodiscard]] std::unique_ptr<ModelSnapshot> make_snapshot(std::size_t budget) const {
    auto snap = std::make_unique<ModelSnapshot>(
        options_, [](RelayId, RelayId) { return PathPerformance{}; }, Metric::Rtt,
        PredictorConfig{}, TopKConfig{}, 1, filled_window());
    snap->set_memo_budget(budget);
    return snap;
  }

  CallContext ctx(AsId src) const {
    CallContext c;
    c.id = src;
    c.src_as = src;
    c.dst_as = 100;
    c.key_src = src;
    c.key_dst = 100;
    c.options = candidates_;
    return c;
  }

  RelayOptionTable options_;
  OptionId bounce_a_ = kInvalidOption;
  OptionId bounce_b_ = kInvalidOption;
  std::vector<OptionId> candidates_;
};

TEST_F(MemoBudgetTest, OverflowServesIdenticalBits) {
  auto unbounded = make_snapshot(0);
  auto budgeted = make_snapshot(2);

  for (AsId src = 1; src <= 6; ++src) {
    const auto expect = unbounded->pair_model(ctx(src), nullptr);
    const auto got = budgeted->pair_model(ctx(src), nullptr);
    ASSERT_EQ(expect.top_k.size(), got.top_k.size()) << "pair " << src;
    for (std::size_t i = 0; i < expect.top_k.size(); ++i) {
      EXPECT_EQ(expect.top_k[i].option, got.top_k[i].option);
      EXPECT_EQ(expect.top_k[i].pred.mean, got.top_k[i].pred.mean);
      EXPECT_EQ(expect.top_k[i].pred.sem, got.top_k[i].pred.sem);
    }
    EXPECT_EQ(expect.predicted_benefit, got.predicted_benefit);
  }
  EXPECT_EQ(unbounded->memo_overflow_builds(), 0);
  // 6 pairs through a 2-entry budget: at least 4 scratch-served builds
  // (every re-touch of an overflowed pair rebuilds).
  EXPECT_GE(budgeted->memo_overflow_builds(), 4);
  // The budgeted snapshot's memo table stayed bounded.
  EXPECT_LT(budgeted->approx_bytes(), unbounded->approx_bytes());
}

// --------------------------------------------------------------- policy

class BoundedPolicyTest : public ::testing::Test {
 protected:
  BoundedPolicyTest() {
    bounce_a_ = options_.intern_bounce(0);
    bounce_b_ = options_.intern_bounce(1);
    candidates_ = {RelayOptionTable::direct_id(), bounce_a_, bounce_b_};
  }

  [[nodiscard]] std::unique_ptr<ViaPolicy> make_policy(ViaConfig config) {
    return std::make_unique<ViaPolicy>(
        options_, [](RelayId, RelayId) { return PathPerformance{}; }, config);
  }

  CallContext ctx(CallId id, AsId src, TimeSec t) const {
    CallContext c;
    c.id = id;
    c.time = t;
    c.src_as = src;
    c.dst_as = 1000;
    c.key_src = src;
    c.key_dst = 1000;
    c.options = candidates_;
    return c;
  }

  /// Drives `days` periods of traffic over `num_pairs` pairs; returns the
  /// chosen option sequence.
  std::vector<OptionId> drive(ViaPolicy& policy, int days, AsId num_pairs) {
    std::vector<OptionId> choices;
    CallId id = 0;
    for (int day = 0; day < days; ++day) {
      for (AsId src = 1; src <= num_pairs; ++src) {
        // The pair set shrinks over time, so late periods leave early
        // pairs stale (TTL food).
        if (src > num_pairs - day * 8) continue;
        const TimeSec t = static_cast<TimeSec>(day) * kSecondsPerDay + src;
        const CallContext c = ctx(++id, src, t);
        const OptionId pick = policy.choose(c);
        choices.push_back(pick);
        Observation o;
        o.id = c.id;
        o.time = t;
        o.src_as = c.key_src;
        o.dst_as = c.key_dst;
        o.option = pick;
        const double base = pick == bounce_a_ ? 110.0 : pick == bounce_b_ ? 190.0 : 250.0;
        o.perf = {base + static_cast<double>(src % 7), 0.5, 4.0};
        policy.observe(o);
      }
      policy.refresh(static_cast<TimeSec>(day + 1) * kSecondsPerDay);
    }
    return choices;
  }

  [[nodiscard]] static ViaConfig bounded_config() {
    ViaConfig config;
    config.mem.max_window_paths = 64;
    config.mem.snapshot_memo_budget = 24;
    config.mem.max_resident_pairs = 40;
    config.mem.pair_ttl_periods = 2;
    return config;
  }

  RelayOptionTable options_;
  OptionId bounce_a_ = kInvalidOption;
  OptionId bounce_b_ = kInvalidOption;
  std::vector<OptionId> candidates_;
};

TEST_F(BoundedPolicyTest, CapsEnforcedAndStatsPopulated) {
  auto policy = make_policy(bounded_config());
  drive(*policy, 5, 100);
  ViaPolicy::MemoryStats mem = policy->memory_stats();
  EXPECT_LE(mem.resident_pairs, 40u);
  EXPECT_LE(mem.window_paths, 64u);
  EXPECT_GT(mem.window_bytes, 0u);
  EXPECT_GT(mem.snapshot_bytes, 0u);
  EXPECT_GT(mem.store_bytes, 0u);
  EXPECT_EQ(mem.total_bytes(), mem.window_bytes + mem.snapshot_bytes + mem.store_bytes);
  // 100 pairs × 3 options through a 64-path window: must have evicted.
  EXPECT_GT(mem.window_evictions, 0);
  EXPECT_GT(mem.store_evictions, 0);
  EXPECT_EQ(mem.window_rejected, 0);
}

TEST_F(BoundedPolicyTest, DeterministicReplayWithEvictionOn) {
  auto a = make_policy(bounded_config());
  auto b = make_policy(bounded_config());
  const auto choices_a = drive(*a, 5, 100);
  const auto choices_b = drive(*b, 5, 100);
  EXPECT_EQ(choices_a, choices_b);
  const auto mem_a = a->memory_stats();
  const auto mem_b = b->memory_stats();
  EXPECT_EQ(mem_a.window_evictions, mem_b.window_evictions);
  EXPECT_EQ(mem_a.store_evictions, mem_b.store_evictions);
  EXPECT_EQ(mem_a.resident_pairs, mem_b.resident_pairs);
}

TEST_F(BoundedPolicyTest, UnboundedConfigNeverEvicts) {
  auto policy = make_policy(ViaConfig{});
  drive(*policy, 5, 100);
  const auto mem = policy->memory_stats();
  EXPECT_EQ(mem.window_evictions, 0);
  EXPECT_EQ(mem.store_evictions, 0);
  EXPECT_EQ(mem.memo_overflow_builds, 0);
  EXPECT_EQ(mem.window_rejected, 0);
}

}  // namespace
}  // namespace via
