// Per-connection buffer tests (DESIGN.md §6h/§6j): the incremental frame
// peel and the staged write queue are the seam both event-driven backends
// (epoll and io_uring) share, so their edge cases — frames split across
// 1-byte reads, EAGAIN mid-frame flushes, stage/consume pointer
// stability, capacity reclaim after a burst — are pinned here without a
// reactor in the loop.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <vector>

#include "rpc/conn_buffer.h"
#include "rpc/framing.h"

namespace via {
namespace {

std::vector<std::byte> encode_frame(std::uint8_t type, std::size_t payload_len,
                                    std::byte fill = std::byte{0xAB}) {
  std::vector<std::byte> out;
  const auto len = static_cast<std::uint32_t>(payload_len);
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::byte>((len >> (8 * i)) & 0xFF));
  }
  out.push_back(static_cast<std::byte>(type));
  out.insert(out.end(), payload_len, fill);
  return out;
}

// ------------------------------------------------------------- ReadBuffer

TEST(ReadBuffer, FrameSplitAcrossOneByteChunks) {
  // The peel must hold partial state across arbitrarily small reads: one
  // byte at a time is the worst case a non-blocking socket can deliver.
  const std::vector<std::byte> wire = encode_frame(3, 11, std::byte{0x5C});
  ReadBuffer rb;
  Frame frame;
  for (std::size_t i = 0; i < wire.size(); ++i) {
    const auto dst = rb.writable(1);
    ASSERT_GE(dst.size(), 1u);
    dst[0] = wire[i];
    rb.commit(1);
    if (i + 1 < wire.size()) {
      EXPECT_FALSE(rb.next_frame(frame)) << "frame complete after " << i + 1 << " bytes";
    }
  }
  ASSERT_TRUE(rb.next_frame(frame));
  EXPECT_EQ(frame.type, 3);
  ASSERT_EQ(frame.payload.size(), 11u);
  EXPECT_EQ(frame.payload[10], std::byte{0x5C});
  EXPECT_EQ(rb.buffered(), 0u);
  EXPECT_FALSE(rb.next_frame(frame));
}

TEST(ReadBuffer, ManyFramesFromOneCommit) {
  std::vector<std::byte> wire;
  for (std::uint8_t t = 1; t <= 5; ++t) {
    const auto f = encode_frame(t, t * 3u);
    wire.insert(wire.end(), f.begin(), f.end());
  }
  ReadBuffer rb;
  const auto dst = rb.writable(wire.size());
  std::memcpy(dst.data(), wire.data(), wire.size());
  rb.commit(wire.size());

  Frame frame;
  for (std::uint8_t t = 1; t <= 5; ++t) {
    ASSERT_TRUE(rb.next_frame(frame));
    EXPECT_EQ(frame.type, t);
    EXPECT_EQ(frame.payload.size(), t * 3u);
  }
  EXPECT_FALSE(rb.next_frame(frame));
}

TEST(ReadBuffer, OversizedHeaderThrowsProtocolError) {
  const auto wire = encode_frame(1, 0);
  std::vector<std::byte> bad(wire.begin(), wire.begin() + 5);
  const std::uint32_t len = kMaxPayload + 1;
  for (int i = 0; i < 4; ++i) bad[static_cast<std::size_t>(i)] =
      static_cast<std::byte>((len >> (8 * i)) & 0xFF);
  ReadBuffer rb;
  const auto dst = rb.writable(bad.size());
  std::memcpy(dst.data(), bad.data(), bad.size());
  rb.commit(bad.size());
  Frame frame;
  EXPECT_THROW((void)rb.next_frame(frame), ProtocolError);
}

TEST(ReadBuffer, BufferedNonzeroAtMidFrameEof) {
  const auto wire = encode_frame(2, 40);
  ReadBuffer rb;
  const std::size_t partial = wire.size() - 7;
  const auto dst = rb.writable(partial);
  std::memcpy(dst.data(), wire.data(), partial);
  rb.commit(partial);
  Frame frame;
  EXPECT_FALSE(rb.next_frame(frame));
  // What a reactor checks at EOF to tell "clean close" from "died
  // mid-frame".
  EXPECT_GT(rb.buffered(), 0u);
}

// ------------------------------------------------------------ WriteBuffer

TEST(WriteBuffer, StageConsumeRoundTrip) {
  WriteBuffer wb;
  const std::vector<std::byte> p1(10, std::byte{0x11});
  const std::vector<std::byte> p2(20, std::byte{0x22});
  wb.frame(1, p1);
  wb.frame(2, p2);
  const std::size_t total = (5 + 10) + (5 + 20);
  EXPECT_EQ(wb.pending(), total);
  EXPECT_EQ(wb.approx_bytes(), total);

  auto span = wb.stage();
  ASSERT_EQ(span.size(), total);
  const std::byte* stable = span.data();

  // Partial consume: the remaining staged bytes keep their addresses even
  // if new frames arrive meanwhile (an async send may reference them).
  wb.consume(7);
  wb.frame(3, p1);
  span = wb.stage();
  EXPECT_EQ(span.data(), stable + 7);
  EXPECT_EQ(span.size(), total - 7);
  EXPECT_EQ(wb.pending(), total - 7 + 5 + 10);

  // Drain the staged region; the next stage() promotes the queued frame.
  wb.consume(span.size());
  span = wb.stage();
  ASSERT_EQ(span.size(), 5u + 10);
  EXPECT_EQ(static_cast<std::uint8_t>(span[4]), 3);
  wb.consume(span.size());
  EXPECT_TRUE(wb.empty());
  EXPECT_EQ(wb.pending(), 0u);
  EXPECT_TRUE(wb.stage().empty());
}

TEST(WriteBuffer, FullDrainReclaimsBurstCapacity) {
  WriteBuffer wb;
  // A burst far above the retain threshold (64 KiB)...
  const std::vector<std::byte> big(200 * 1024, std::byte{0x77});
  wb.frame(9, big);
  auto span = wb.stage();
  ASSERT_GT(span.size(), 200u * 1024);
  EXPECT_GT(wb.reserve_bytes(), 200u * 1024);
  // ...must not pin its high-water allocation after the queue drains.
  wb.consume(span.size());
  EXPECT_TRUE(wb.empty());
  EXPECT_LT(wb.reserve_bytes(), 128u * 1024);

  // And a small queue keeps its capacity for reuse (no thrash).
  const std::vector<std::byte> small(100, std::byte{0x33});
  wb.frame(1, small);
  span = wb.stage();
  const std::size_t kept = wb.reserve_bytes();
  wb.consume(span.size());
  EXPECT_EQ(wb.reserve_bytes(), kept);
}

TEST(WriteBuffer, FlushHandlesEagainMidFrame) {
  // Tiny kernel buffers force flush() to park mid-frame (even mid-header)
  // and pick up exactly where it left off once the reader drains.
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const int sndbuf = 4096;
  ASSERT_EQ(::setsockopt(fds[0], SOL_SOCKET, SO_SNDBUF, &sndbuf, sizeof(sndbuf)), 0);
  // The writer side must be non-blocking, as in the reactors.
  ASSERT_EQ(::fcntl(fds[0], F_SETFL, O_NONBLOCK), 0);

  WriteBuffer wb;
  std::vector<std::byte> expected;
  for (std::uint8_t t = 1; t <= 40; ++t) {
    const std::vector<std::byte> payload(1000 + t, static_cast<std::byte>(t));
    wb.frame(t, payload);
    const auto f = encode_frame(t, payload.size(), static_cast<std::byte>(t));
    expected.insert(expected.end(), f.begin(), f.end());
  }

  std::vector<std::byte> received;
  received.reserve(expected.size());
  char buf[2048];
  bool drained = wb.flush(fds[0]);
  EXPECT_FALSE(drained);  // ~41 KB cannot fit a 4 KB socket buffer
  int spins = 0;
  while (!drained) {
    ASSERT_LT(++spins, 10000);
    const ssize_t n = ::read(fds[1], buf, sizeof(buf));
    ASSERT_GT(n, 0);
    const auto* p = reinterpret_cast<const std::byte*>(buf);
    received.insert(received.end(), p, p + n);
    drained = wb.flush(fds[0]);
  }
  EXPECT_TRUE(wb.empty());
  for (;;) {
    const ssize_t n = ::read(fds[1], buf, sizeof(buf));
    if (n <= 0) break;
    const auto* p = reinterpret_cast<const std::byte*>(buf);
    received.insert(received.end(), p, p + n);
    if (received.size() >= expected.size()) break;
  }
  // Byte-exact: no frame reordered, duplicated, or torn by the partial
  // writes.
  EXPECT_EQ(received, expected);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(WriteBuffer, FlushReportsHardErrors) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ASSERT_EQ(::fcntl(fds[0], F_SETFL, O_NONBLOCK), 0);
  ::close(fds[1]);  // peer gone: writes now fail hard (EPIPE), not EAGAIN
  WriteBuffer wb;
  const std::vector<std::byte> payload(64, std::byte{0x01});
  wb.frame(1, payload);
  EXPECT_THROW((void)wb.flush(fds[0]), std::system_error);
  ::close(fds[0]);
}

}  // namespace
}  // namespace via
