#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/timer.h"
#include "obs/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>
#include <string_view>
#include <thread>
#include <vector>

namespace via {
namespace {

using obs::DecisionEvent;
using obs::DecisionReason;

TEST(ObsCounter, ConcurrentIncrementsExact) {
  obs::MetricsRegistry registry;
  obs::Counter& c = registry.counter("test.hits");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.inc();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.value(), static_cast<std::int64_t>(kThreads) * kPerThread);
  EXPECT_EQ(registry.snapshot().counter_value("test.hits"),
            static_cast<std::int64_t>(kThreads) * kPerThread);
}

TEST(ObsGauge, LastWriteWinsAndRoundTripsDoubles) {
  obs::MetricsRegistry registry;
  obs::Gauge& g = registry.gauge("test.level");
  g.set(0.25);
  EXPECT_DOUBLE_EQ(g.value(), 0.25);
  g.set(-1e300);
  EXPECT_DOUBLE_EQ(g.value(), -1e300);
  EXPECT_DOUBLE_EQ(registry.snapshot().gauge_value("test.level"), -1e300);
}

TEST(ObsHistogram, BucketBoundariesUseLeSemantics) {
  const std::vector<double> bounds{1.0, 2.0, 4.0};
  obs::LatencyHistogram h{std::span<const double>(bounds)};
  ASSERT_EQ(h.bucket_count(), 4u);  // 3 finite + overflow
  h.observe(0.5);   // <= 1       -> bucket 0
  h.observe(1.0);   // == bound   -> bucket 0 (le semantics)
  h.observe(1.001); // > 1, <= 2  -> bucket 1
  h.observe(4.0);   // == last    -> bucket 2
  h.observe(100.0); // beyond     -> overflow
  EXPECT_EQ(h.bucket(0), 2);
  EXPECT_EQ(h.bucket(1), 1);
  EXPECT_EQ(h.bucket(2), 1);
  EXPECT_EQ(h.bucket(3), 1);
  EXPECT_EQ(h.count(), 5);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.001 + 4.0 + 100.0);
}

TEST(ObsHistogram, ConcurrentObservesExactTotals) {
  obs::MetricsRegistry registry;
  obs::LatencyHistogram& h = registry.histogram("test.lat", obs::kLatencyBoundsUs);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) h.observe(static_cast<double>(t + 1));
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(h.count(), static_cast<std::int64_t>(kThreads) * kPerThread);
  // Sum of t+1 for t in [0,8) is 36, times kPerThread observations each.
  EXPECT_DOUBLE_EQ(h.sum(), 36.0 * kPerThread);
  std::int64_t bucket_total = 0;
  for (std::size_t i = 0; i < h.bucket_count(); ++i) bucket_total += h.bucket(i);
  EXPECT_EQ(bucket_total, h.count());
}

TEST(ObsHistogram, QuantileAndMeanFromSnapshot) {
  const std::vector<double> bounds{10.0, 20.0, 40.0};
  obs::LatencyHistogram h{std::span<const double>(bounds)};
  for (int i = 0; i < 90; ++i) h.observe(5.0);
  for (int i = 0; i < 10; ++i) h.observe(30.0);
  obs::HistogramSample s;
  s.upper_bounds = bounds;
  s.counts = {h.bucket(0), h.bucket(1), h.bucket(2), h.bucket(3)};
  s.count = h.count();
  s.sum = h.sum();
  EXPECT_DOUBLE_EQ(s.mean(), (90 * 5.0 + 10 * 30.0) / 100.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 10.0);   // p50 in first bucket
  EXPECT_DOUBLE_EQ(s.quantile(0.99), 40.0);  // p99 in the 30ms bucket
}

TEST(ObsRegistry, MergeIntoAddsCountersAndBuckets) {
  obs::MetricsRegistry a;
  obs::MetricsRegistry b;
  a.counter("x").inc(3);
  b.counter("x").inc(4);
  b.counter("only_b").inc(1);
  a.gauge("g").set(1.0);
  b.gauge("g").set(2.0);
  const std::vector<double> bounds{1.0, 2.0};
  a.histogram("h", bounds).observe(0.5);
  b.histogram("h", bounds).observe(1.5);
  b.merge_into(a);
  const obs::MetricsSnapshot snap = a.snapshot();
  EXPECT_EQ(snap.counter_value("x"), 7);
  EXPECT_EQ(snap.counter_value("only_b"), 1);
  EXPECT_DOUBLE_EQ(snap.gauge_value("g"), 2.0);  // gauges overwrite
  const obs::HistogramSample* h = snap.find_histogram("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 2);
  EXPECT_DOUBLE_EQ(h->sum, 2.0);
  EXPECT_EQ(h->counts[0], 1);
  EXPECT_EQ(h->counts[1], 1);
}

TEST(ObsTimer, ObservesElapsedOnDestruction) {
  const std::vector<double> bounds{1e9};  // everything lands in bucket 0
  obs::LatencyHistogram h{std::span<const double>(bounds)};
  { const obs::ScopedTimer t(h); }
  { const obs::ScopedTimer t(&h); }
  { const obs::ScopedTimer t(static_cast<obs::LatencyHistogram*>(nullptr)); }
  EXPECT_EQ(h.count(), 2);
  EXPECT_GE(h.sum(), 0.0);
}

DecisionEvent make_event(CallId id) {
  DecisionEvent e;
  e.call_id = id;
  e.time = 1000 + id;
  e.src_as = 3;
  e.dst_as = 9;
  e.option = static_cast<OptionId>(id % 5);
  e.reason = static_cast<DecisionReason>(id % obs::kNumDecisionReasons);
  e.predicted = 120.5 + static_cast<double>(id);
  e.top_k_size = 4;
  e.bandit_pulls = 10 * id;
  return e;
}

TEST(ObsTrace, RingWraparoundKeepsNewestOldestFirst) {
  obs::DecisionTrace trace(4);
  for (CallId id = 0; id < 10; ++id) trace.record(make_event(id));
  EXPECT_EQ(trace.capacity(), 4u);
  EXPECT_EQ(trace.recorded(), 10);
  EXPECT_EQ(trace.dropped(), 6);
  const std::vector<DecisionEvent> events = trace.snapshot();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].call_id, static_cast<CallId>(6 + i));
  }
}

TEST(ObsTrace, FillObservedBackfillsResidentEventOnly) {
  obs::DecisionTrace trace(2);
  trace.record(make_event(1));
  trace.record(make_event(2));
  trace.record(make_event(3));     // evicts call 1
  trace.fill_observed(1, 55.0);    // no-op: evicted
  trace.fill_observed(3, 77.0);
  const std::vector<DecisionEvent> events = trace.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_TRUE(std::isnan(events[0].observed));
  EXPECT_EQ(events[1].call_id, 3);
  EXPECT_DOUBLE_EQ(events[1].observed, 77.0);
}

TEST(ObsTrace, JsonlRoundTrip) {
  DecisionEvent e = make_event(42);
  e.observed = 98.75;
  const std::string line = e.to_jsonl();
  const std::optional<DecisionEvent> back = DecisionEvent::from_jsonl(line);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->call_id, e.call_id);
  EXPECT_EQ(back->time, e.time);
  EXPECT_EQ(back->src_as, e.src_as);
  EXPECT_EQ(back->dst_as, e.dst_as);
  EXPECT_EQ(back->option, e.option);
  EXPECT_EQ(back->reason, e.reason);
  EXPECT_DOUBLE_EQ(back->predicted, e.predicted);
  EXPECT_DOUBLE_EQ(back->observed, e.observed);
  EXPECT_EQ(back->top_k_size, e.top_k_size);
  EXPECT_EQ(back->bandit_pulls, e.bandit_pulls);
}

TEST(ObsTrace, JsonlNanSerializesAsNullAndParsesBack) {
  DecisionEvent e = make_event(7);  // observed defaults to NaN
  const std::string line = e.to_jsonl();
  EXPECT_NE(line.find("\"observed\":null"), std::string::npos);
  const std::optional<DecisionEvent> back = DecisionEvent::from_jsonl(line);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(std::isnan(back->observed));
}

TEST(ObsTrace, FromJsonlRejectsMalformed) {
  EXPECT_FALSE(DecisionEvent::from_jsonl("").has_value());
  EXPECT_FALSE(DecisionEvent::from_jsonl("{\"call\":1}").has_value());
  EXPECT_FALSE(DecisionEvent::from_jsonl("not json at all").has_value());
}

TEST(ObsTrace, ExportJsonlRoundTripsEveryLine) {
  obs::DecisionTrace trace(8);
  for (CallId id = 0; id < 6; ++id) trace.record(make_event(id));
  trace.fill_observed(4, 33.25);
  std::ostringstream os;
  trace.export_jsonl(os);
  std::istringstream is(os.str());
  std::string line;
  std::vector<DecisionEvent> parsed;
  while (std::getline(is, line)) {
    const std::optional<DecisionEvent> e = DecisionEvent::from_jsonl(line);
    ASSERT_TRUE(e.has_value()) << line;
    parsed.push_back(*e);
  }
  ASSERT_EQ(parsed.size(), 6u);
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(parsed[i].call_id, static_cast<CallId>(i));
  }
  EXPECT_DOUBLE_EQ(parsed[4].observed, 33.25);
}

TEST(ObsTrace, ReasonNamesRoundTrip) {
  for (std::size_t i = 0; i < obs::kNumDecisionReasons; ++i) {
    const auto r = static_cast<DecisionReason>(i);
    const std::optional<DecisionReason> back =
        obs::decision_reason_from(obs::decision_reason_name(r));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, r);
  }
  EXPECT_FALSE(obs::decision_reason_from("nonsense").has_value());
}

TEST(ObsExport, RenderersIncludeEveryInstrument) {
  obs::Telemetry telemetry;
  telemetry.registry.counter("policy.decision.ucb").inc(5);
  telemetry.registry.gauge("policy.refresh.tomography_segments").set(12.0);
  telemetry.registry.histogram("rpc.server.request_us", obs::kLatencyBoundsUs).observe(3.0);
  const obs::MetricsSnapshot snap = telemetry.registry.snapshot();

  const std::string table = obs::render_stats(snap, obs::StatsFormat::Table);
  EXPECT_NE(table.find("policy.decision.ucb"), std::string::npos);
  EXPECT_NE(table.find("rpc.server.request_us"), std::string::npos);

  const std::string json = obs::render_stats(snap, obs::StatsFormat::Json);
  EXPECT_NE(json.find("\"policy.decision.ucb\":5"), std::string::npos);
  EXPECT_NE(json.find("\"rpc.server.request_us\""), std::string::npos);

  const std::string prom = obs::render_stats(snap, obs::StatsFormat::Prometheus);
  EXPECT_NE(prom.find("policy_decision_ucb 5"), std::string::npos);
  EXPECT_NE(prom.find("rpc_server_request_us_bucket{le=\"1\"}"), std::string::npos);
  EXPECT_NE(prom.find("rpc_server_request_us_bucket{le=\"+Inf\"}"), std::string::npos);
  EXPECT_NE(prom.find("rpc_server_request_us_count 1"), std::string::npos);
}

// ------------------------------------------------------------ JSON escaping

TEST(ObsExport, JsonEscapeRoundTripsHostileStrings) {
  const std::string hostile =
      "quote\" backslash\\ newline\n tab\t cr\r bell\x07 nul-adjacent\x01 end";
  const std::string escaped = obs::json_escape(hostile);
  // The escaped form must be free of raw control characters and raw quotes.
  for (const char c : escaped) {
    EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
  }
  EXPECT_EQ(escaped.find('\n'), std::string::npos);
  EXPECT_EQ(obs::json_unescape(escaped), hostile);
  // Idempotent on plain text.
  EXPECT_EQ(obs::json_escape("plain"), "plain");
  EXPECT_EQ(obs::json_unescape("plain"), "plain");
}

TEST(ObsExport, RenderJsonEscapesHostileMetricNames) {
  obs::MetricsRegistry registry;
  registry.counter("bad\"name\nwith\\controls").inc(3);
  const std::string json = obs::render_stats(registry.snapshot(), obs::StatsFormat::Json);
  // The document must not contain a raw newline inside the name, and the
  // escaped name must parse back to the original.
  EXPECT_NE(json.find("bad\\\"name\\nwith\\\\controls"), std::string::npos);
  EXPECT_EQ(json.find("bad\"name"), std::string::npos);
}

TEST(ObsTrace, HealthReasonsRoundTripJsonl) {
  // The two health-path reasons ride JSONL dumps byte-exactly (§6f).
  for (const DecisionReason reason :
       {DecisionReason::QuarantinedRelay, DecisionReason::FallbackDirectOutage}) {
    DecisionEvent e;
    e.call_id = 4242;
    e.time = 86'400;
    e.src_as = 7;
    e.dst_as = 11;
    e.option = 3;
    e.reason = reason;
    e.predicted = 123.5;
    e.observed = 150.25;
    e.top_k_size = 5;
    e.bandit_pulls = 99;
    const std::string line = e.to_jsonl();
    EXPECT_NE(line.find(obs::decision_reason_name(reason)), std::string::npos);
    const std::optional<DecisionEvent> back = DecisionEvent::from_jsonl(line);
    ASSERT_TRUE(back.has_value()) << line;
    EXPECT_EQ(back->call_id, e.call_id);
    EXPECT_EQ(back->reason, e.reason);
    EXPECT_EQ(back->option, e.option);
    EXPECT_DOUBLE_EQ(back->predicted, e.predicted);
    EXPECT_DOUBLE_EQ(back->observed, e.observed);
    EXPECT_EQ(back->top_k_size, e.top_k_size);
    EXPECT_EQ(back->bandit_pulls, e.bandit_pulls);
    // Round-trip is a fixed point: re-serializing parses identically.
    EXPECT_EQ(back->to_jsonl(), line);
  }
}

// -------------------------------------------- Prometheus exposition grammar

namespace prom_grammar {

bool valid_metric_name(std::string_view name) {
  if (name.empty()) return false;
  for (std::size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':';
    const bool digit = c >= '0' && c <= '9';
    if (!(alpha || (digit && i > 0))) return false;
  }
  return true;
}

std::string_view line_metric_name(std::string_view line) {
  const std::size_t brace = line.find('{');
  const std::size_t space = line.find(' ');
  return line.substr(0, std::min(brace, space));
}

}  // namespace prom_grammar

TEST(ObsExport, PrometheusExpositionFollowsLineGrammar) {
  obs::MetricsRegistry registry;
  registry.counter("policy.decision.ucb").inc(5);
  registry.counter("rpc.client.errors.timeout").inc(2);
  registry.gauge("policy.health.quarantined").set(1.0);
  auto& h = registry.histogram("rpc.server.request_us", obs::kLatencyBoundsUs);
  h.observe(3.0);
  h.observe(700.0);
  const std::string prom = obs::render_stats(registry.snapshot(), obs::StatsFormat::Prometheus);

  std::istringstream in(prom);
  std::string line;
  std::string last_help_type_name;  // name announced by the preceding # HELP/# TYPE
  std::map<std::string, double> bucket_last;  // histogram name -> last le cumulative
  std::map<std::string, double> bucket_inf;   // histogram name -> +Inf cumulative
  std::map<std::string, double> histogram_count;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line.rfind("# HELP ", 0) == 0 || line.rfind("# TYPE ", 0) == 0) {
      std::istringstream meta(line.substr(7));
      std::string name;
      meta >> name;
      EXPECT_TRUE(prom_grammar::valid_metric_name(name)) << line;
      last_help_type_name = name;
      continue;
    }
    ASSERT_NE(line[0], '#') << "unknown comment form: " << line;
    // Sample line: name[{labels}] value
    const std::string_view name = prom_grammar::line_metric_name(line);
    EXPECT_TRUE(prom_grammar::valid_metric_name(name)) << line;
    // Dots from internal names must have been mapped away.
    EXPECT_EQ(name.find('.'), std::string_view::npos) << line;
    // Every sample belongs to the family announced by the last HELP/TYPE.
    EXPECT_EQ(std::string(name).rfind(last_help_type_name, 0), 0u)
        << line << " vs " << last_help_type_name;
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    double value = 0.0;
    ASSERT_NO_THROW(value = std::stod(line.substr(space + 1))) << line;
    // le buckets must be cumulative (monotone nondecreasing), ending at +Inf.
    const std::string n(name);
    if (n.size() > 7 && n.rfind("_bucket") == n.size() - 7) {
      const std::string family = n.substr(0, n.size() - 7);
      const std::size_t le = line.find("le=\"");
      ASSERT_NE(le, std::string::npos) << line;
      const std::string le_val = line.substr(le + 4, line.find('"', le + 4) - le - 4);
      if (le_val == "+Inf") {
        bucket_inf[family] = value;
      } else {
        EXPECT_GE(value, bucket_last[family]) << line;
        bucket_last[family] = value;
      }
    } else if (n.size() > 6 && n.rfind("_count") == n.size() - 6) {
      histogram_count[n.substr(0, n.size() - 6)] = value;
    }
  }
  // The histogram rendered, its +Inf bucket equals its count, and the
  // cumulative buckets never exceeded it.
  ASSERT_TRUE(bucket_inf.count("rpc_server_request_us"));
  EXPECT_DOUBLE_EQ(bucket_inf["rpc_server_request_us"], 2.0);
  EXPECT_DOUBLE_EQ(histogram_count["rpc_server_request_us"], 2.0);
  EXPECT_LE(bucket_last["rpc_server_request_us"], bucket_inf["rpc_server_request_us"]);
}

}  // namespace
}  // namespace via
