#include "common/linearize.h"

#include <gtest/gtest.h>

#include <cmath>

namespace via {
namespace {

TEST(Linearize, RttIsIdentity) {
  EXPECT_DOUBLE_EQ(linearize(Metric::Rtt, 123.0), 123.0);
  EXPECT_DOUBLE_EQ(delinearize(Metric::Rtt, 123.0), 123.0);
}

TEST(Linearize, LossRoundTrip) {
  for (const double pct : {0.0, 0.1, 1.0, 5.0, 20.0, 80.0}) {
    EXPECT_NEAR(delinearize(Metric::Loss, linearize(Metric::Loss, pct)), pct, 1e-9)
        << "loss " << pct;
  }
}

TEST(Linearize, JitterRoundTrip) {
  for (const double j : {0.0, 0.5, 3.0, 12.0, 100.0}) {
    EXPECT_NEAR(delinearize(Metric::Jitter, linearize(Metric::Jitter, j)), j, 1e-9);
  }
}

TEST(Linearize, MonotoneIncreasing) {
  for (const Metric m : kAllMetrics) {
    double prev = -1.0;
    for (const double v : {0.0, 0.5, 1.0, 5.0, 20.0}) {
      const double lin = linearize(m, v);
      EXPECT_GT(lin, prev) << metric_name(m) << " at " << v;
      prev = lin;
    }
  }
}

TEST(Linearize, LossClampsExtremes) {
  // Values beyond the representable range must not produce inf/NaN.
  EXPECT_TRUE(std::isfinite(linearize(Metric::Loss, 100.0)));
  EXPECT_TRUE(std::isfinite(linearize(Metric::Loss, 150.0)));
  EXPECT_LE(delinearize(Metric::Loss, 1e9), kMaxLossPct);
}

TEST(Linearize, DelinearizeNegativeClamps) {
  EXPECT_DOUBLE_EQ(delinearize(Metric::Rtt, -5.0), 0.0);
  EXPECT_DOUBLE_EQ(delinearize(Metric::Loss, -5.0), 0.0);
  EXPECT_DOUBLE_EQ(delinearize(Metric::Jitter, -5.0), 0.0);
}

TEST(Compose, RttAdds) {
  const PathPerformance a{100.0, 0.0, 0.0};
  const PathPerformance b{50.0, 0.0, 0.0};
  EXPECT_NEAR(compose_segments(a, b).rtt_ms, 150.0, 1e-9);
}

TEST(Compose, LossCombinesIndependently) {
  // 1 - (1-0.10)(1-0.20) = 0.28.
  const PathPerformance a{0.0, 10.0, 0.0};
  const PathPerformance b{0.0, 20.0, 0.0};
  EXPECT_NEAR(compose_segments(a, b).loss_pct, 28.0, 1e-6);
}

TEST(Compose, JitterAddsInVariance) {
  const PathPerformance a{0.0, 0.0, 3.0};
  const PathPerformance b{0.0, 0.0, 4.0};
  EXPECT_NEAR(compose_segments(a, b).jitter_ms, 5.0, 1e-9);
}

TEST(Compose, Commutative) {
  const PathPerformance a{80.0, 1.0, 2.0};
  const PathPerformance b{20.0, 3.0, 7.0};
  const PathPerformance ab = compose_segments(a, b);
  const PathPerformance ba = compose_segments(b, a);
  for (const Metric m : kAllMetrics) {
    EXPECT_NEAR(ab.get(m), ba.get(m), 1e-9);
  }
}

TEST(Compose, IdentityWithZero) {
  const PathPerformance a{80.0, 1.0, 2.0};
  const PathPerformance zero{};
  const PathPerformance out = compose_segments(a, zero);
  for (const Metric m : kAllMetrics) EXPECT_NEAR(out.get(m), a.get(m), 1e-9);
}

TEST(Compose, ThreeSegmentsAssociative) {
  const PathPerformance a{10.0, 0.5, 1.0};
  const PathPerformance b{20.0, 1.0, 2.0};
  const PathPerformance c{30.0, 2.0, 3.0};
  const PathPerformance abc = compose_segments(a, b, c);
  const PathPerformance alt = compose_segments(a, compose_segments(b, c));
  for (const Metric m : kAllMetrics) EXPECT_NEAR(abc.get(m), alt.get(m), 1e-9);
}

TEST(Compose, MonotoneInEachSegment) {
  const PathPerformance base{50.0, 1.0, 3.0};
  const PathPerformance small{10.0, 0.2, 1.0};
  const PathPerformance large{40.0, 1.5, 4.0};
  const PathPerformance with_small = compose_segments(base, small);
  const PathPerformance with_large = compose_segments(base, large);
  for (const Metric m : kAllMetrics) {
    EXPECT_LT(with_small.get(m), with_large.get(m)) << metric_name(m);
  }
}

}  // namespace
}  // namespace via
