// Tests for the §7 extensions: client-side decision caching, hybrid
// racing, active-measurement planning, and the per-relay load cap.
#include "core/extensions.h"

#include <gtest/gtest.h>

#include <set>

#include "sim/experiment.h"

namespace via {
namespace {

/// Minimal controller double that counts consultations.
class CountingPolicy final : public RoutingPolicy {
 public:
  explicit CountingPolicy(OptionId option) : option_(option) {}
  [[nodiscard]] OptionId choose(const CallContext&) override {
    ++consultations;
    return option_;
  }
  void observe(const Observation&) override { ++observations; }
  void refresh(TimeSec) override { ++refreshes; }
  [[nodiscard]] std::string_view name() const override { return "counting"; }

  OptionId option_;
  int consultations = 0;
  int observations = 0;
  int refreshes = 0;
};

CallContext ctx_at(TimeSec t, AsId src = 1, AsId dst = 2,
                   std::span<const OptionId> options = {}) {
  CallContext c;
  c.id = t;
  c.time = t;
  c.src_as = src;
  c.dst_as = dst;
  c.key_src = src;
  c.key_dst = dst;
  c.options = options;
  return c;
}

TEST(CachingClient, ServesFromCacheWithinTtl) {
  CountingPolicy controller(7);
  CachingClient client(controller, /*ttl=*/3600);
  EXPECT_EQ(client.choose(ctx_at(1000)), 7);
  EXPECT_EQ(client.choose(ctx_at(2000)), 7);
  EXPECT_EQ(client.choose(ctx_at(3000)), 7);
  EXPECT_EQ(controller.consultations, 1);
  EXPECT_EQ(client.cache_hits(), 2);
  EXPECT_EQ(client.cache_misses(), 1);
  EXPECT_NEAR(client.hit_rate(), 2.0 / 3.0, 1e-12);
}

TEST(CachingClient, RefetchesAfterTtl) {
  CountingPolicy controller(7);
  CachingClient client(controller, /*ttl=*/3600);
  (void)client.choose(ctx_at(1000));
  (void)client.choose(ctx_at(1000 + 3600));  // exactly at expiry
  EXPECT_EQ(controller.consultations, 2);
}

TEST(CachingClient, SeparateEntriesPerPair) {
  CountingPolicy controller(7);
  CachingClient client(controller, /*ttl=*/3600);
  (void)client.choose(ctx_at(1000, 1, 2));
  (void)client.choose(ctx_at(1001, 3, 4));
  EXPECT_EQ(controller.consultations, 2);
  (void)client.choose(ctx_at(1002, 2, 1));  // same undirected pair as (1,2)
  EXPECT_EQ(controller.consultations, 2);
}

TEST(CachingClient, ForwardsObserveAndRefresh) {
  CountingPolicy controller(7);
  CachingClient client(controller, 3600);
  client.observe(Observation{});
  client.refresh(kSecondsPerDay);
  EXPECT_EQ(controller.observations, 1);
  EXPECT_EQ(controller.refreshes, 1);
}

TEST(CachingClient, ReducesControllerLoadInSimulation) {
  Experiment exp(Experiment::default_setup(Experiment::Scale::Small));
  auto inner = exp.make_via(Metric::Rtt);
  CachingClient cached(*inner, /*ttl=*/6 * 3600);
  const RunResult r = exp.run(cached);
  EXPECT_GT(r.calls, 0);
  EXPECT_GT(cached.hit_rate(), 0.5);  // most calls answered from cache
}

TEST(CachingClient, StalenessCostsQualityButNotMuch) {
  Experiment exp(Experiment::default_setup(Experiment::Scale::Small));
  auto fresh_policy = exp.make_via(Metric::Rtt);
  const RunResult fresh = exp.run(*fresh_policy);

  auto inner = exp.make_via(Metric::Rtt);
  CachingClient cached(*inner, /*ttl=*/6 * 3600);
  const RunResult stale = exp.run(cached);

  // Caching shouldn't catastrophically hurt PNR (same predictions, the
  // bandit just adapts more slowly).
  EXPECT_LT(stale.pnr.pnr(Metric::Rtt), fresh.pnr.pnr(Metric::Rtt) * 1.6 + 0.01);
}

TEST(HybridRacer, RaceSetContainsPrimaryAndIsBounded) {
  RelayOptionTable options;
  const OptionId b0 = options.intern_bounce(0);
  const OptionId b1 = options.intern_bounce(1);
  const OptionId b2 = options.intern_bounce(2);
  ViaConfig config;
  config.epsilon = 0.0;
  ViaPolicy inner(options, [](RelayId, RelayId) { return PathPerformance{}; }, config);

  // History making all three bounces plausible.
  for (int i = 0; i < 8; ++i) {
    for (const OptionId opt : {b0, b1, b2}) {
      Observation o;
      o.src_as = 1;
      o.dst_as = 2;
      o.option = opt;
      o.perf = {100.0 + 30.0 * (i % 3), 0.5, 3.0};
      inner.observe(o);
    }
  }
  inner.refresh(kSecondsPerDay);

  HybridRacer racer(inner, /*race_width=*/2);
  const std::vector<OptionId> opts{RelayOptionTable::direct_id(), b0, b1, b2};
  const auto race = racer.choose_candidates(ctx_at(kSecondsPerDay + 10, 1, 2, opts));
  ASSERT_FALSE(race.empty());
  EXPECT_LE(race.size(), 2u);
  const std::set<OptionId> unique(race.begin(), race.end());
  EXPECT_EQ(unique.size(), race.size());
}

TEST(HybridRacer, RacingImprovesOverSingleChoice) {
  Experiment exp(Experiment::default_setup(Experiment::Scale::Small));
  auto plain = exp.make_via(Metric::Rtt);
  const RunResult single = exp.run(*plain);

  auto inner = exp.make_via(Metric::Rtt);
  HybridRacer racer(*inner, 3);
  RunConfig config;
  config.enable_racing = true;
  const RunResult raced = exp.run(racer, config);

  EXPECT_GT(raced.raced_extra_samples, 0);
  // Picking the best of several raced options cannot be worse on average.
  EXPECT_LE(raced.pnr.pnr(Metric::Rtt), single.pnr.pnr(Metric::Rtt) * 1.02);
}

TEST(ActiveProbing, ViaPolicyCollectsCoverageHoles) {
  RelayOptionTable options;
  const OptionId known = options.intern_bounce(0);
  const OptionId unknown = options.intern_bounce(9);
  ViaConfig config;
  config.epsilon = 0.0;
  ViaPolicy policy(options, [](RelayId, RelayId) { return PathPerformance{}; }, config);

  for (int i = 0; i < 8; ++i) {
    Observation o;
    o.src_as = 1;
    o.dst_as = 2;
    o.option = known;
    o.perf = {100.0 + i, 0.5, 3.0};
    policy.observe(o);
  }
  policy.refresh(kSecondsPerDay);
  const std::vector<OptionId> opts{RelayOptionTable::direct_id(), known, unknown};
  (void)policy.choose(ctx_at(kSecondsPerDay + 5, 1, 2, opts));

  const auto probes = policy.plan_probes(10);
  ASSERT_FALSE(probes.empty());
  bool found = false;
  for (const auto& p : probes) {
    if (p.option == unknown && p.src_as == 1 && p.dst_as == 2) found = true;
    EXPECT_NE(p.option, known) << "covered options should not be probed";
  }
  EXPECT_TRUE(found);
  // Wishlist drained.
  EXPECT_TRUE(policy.plan_probes(10).empty());
}

TEST(ActiveProbing, EngineExecutesProbes) {
  Experiment exp(Experiment::default_setup(Experiment::Scale::Small));
  auto policy = exp.make_via(Metric::Rtt);
  RunConfig config;
  config.probes_per_refresh = 50;
  const RunResult r = exp.run(*policy, config);
  EXPECT_GT(r.probes_executed, 0);
}

TEST(RelayShareCap, LimitsSingleRelayLoad) {
  Experiment exp(Experiment::default_setup(Experiment::Scale::Small));
  ViaConfig config;
  config.relay_share_cap = 0.25;
  auto policy = exp.make_via(Metric::Rtt, config);
  const RunResult r = exp.run(*policy);
  EXPECT_GT(policy->stats().relay_cap_denied, 0);
  EXPECT_GT(r.relayed_fraction(), 0.1);  // still relays, just spreads load
}

TEST(RelayShareCap, DisabledByDefault) {
  Experiment exp(Experiment::default_setup(Experiment::Scale::Small));
  auto policy = exp.make_via(Metric::Rtt);
  (void)exp.run(*policy);
  EXPECT_EQ(policy->stats().relay_cap_denied, 0);
}

}  // namespace
}  // namespace via
