#include "sim/engine.h"

#include <gtest/gtest.h>

#include <set>

#include "core/policies.h"
#include "trace/generator.h"

namespace via {
namespace {

/// Records every interaction for assertions.
class SpyPolicy final : public RoutingPolicy {
 public:
  [[nodiscard]] OptionId choose(const CallContext& call) override {
    contexts.push_back(call);
    keys.insert(call.pair_key());
    return RelayOptionTable::direct_id();
  }
  void observe(const Observation& obs) override { observations.push_back(obs); }
  void refresh(TimeSec now) override { refreshes.push_back(now); }
  [[nodiscard]] std::string_view name() const override { return "spy"; }

  std::vector<CallContext> contexts;
  std::vector<Observation> observations;
  std::vector<TimeSec> refreshes;
  std::set<std::uint64_t> keys;
};

class EngineTest : public ::testing::Test {
 protected:
  EngineTest() : world_({.num_ases = 40, .num_relays = 8, .seed = 51}), gt_(world_) {
    TraceConfig config;
    config.days = 5;
    config.total_calls = 5'000;
    config.active_pairs = 60;
    config.seed = 9;
    TraceGenerator gen(gt_, config);
    arrivals_ = gen.generate_arrivals();
  }

  World world_;
  GroundTruth gt_;
  std::vector<CallArrival> arrivals_;
};

RunConfig no_background() {
  RunConfig config;
  config.background_relay_fraction = 0.0;
  return config;
}

TEST_F(EngineTest, ProcessesEveryCall) {
  SpyPolicy spy;
  SimulationEngine engine(gt_, arrivals_, no_background());
  const RunResult result = engine.run(spy);
  EXPECT_EQ(result.calls, 5'000);
  EXPECT_EQ(result.evaluated_calls, 5'000);
  EXPECT_EQ(spy.contexts.size(), 5'000u);
  EXPECT_EQ(spy.observations.size(), 5'000u);
  EXPECT_EQ(result.pnr.total(), 5'000);
}

TEST_F(EngineTest, RefreshFiresOncePerPeriod) {
  SpyPolicy spy;
  RunConfig config = no_background();
  config.refresh_period = kSecondsPerDay;
  SimulationEngine engine(gt_, arrivals_, config);
  (void)engine.run(spy);
  // 5 days of trace -> refreshes at day boundaries 1..4 (calls exist on
  // each day).
  EXPECT_EQ(spy.refreshes.size(), 4u);
  for (std::size_t i = 0; i < spy.refreshes.size(); ++i) {
    EXPECT_EQ(spy.refreshes[i], static_cast<TimeSec>(i + 1) * kSecondsPerDay);
  }
}

TEST_F(EngineTest, RefreshPeriodConfigurable) {
  SpyPolicy spy;
  RunConfig config = no_background();
  config.refresh_period = 6 * 3600;
  SimulationEngine engine(gt_, arrivals_, config);
  (void)engine.run(spy);
  EXPECT_GT(spy.refreshes.size(), 12u);
}

TEST_F(EngineTest, DefaultGranularityKeysAreAsIds) {
  SpyPolicy spy;
  SimulationEngine engine(gt_, arrivals_, no_background());
  (void)engine.run(spy);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(spy.contexts[i].key_src, spy.contexts[i].src_as);
    EXPECT_EQ(spy.contexts[i].key_dst, spy.contexts[i].dst_as);
  }
}

TEST_F(EngineTest, CountryGranularityCoarsensKeys) {
  SpyPolicy as_spy, country_spy;
  SimulationEngine as_engine(gt_, arrivals_, no_background());
  (void)as_engine.run(as_spy);
  RunConfig config = no_background();
  config.granularity = Granularity::Country;
  SimulationEngine country_engine(gt_, arrivals_, config);
  (void)country_engine.run(country_spy);
  EXPECT_LT(country_spy.keys.size(), as_spy.keys.size());
}

TEST_F(EngineTest, PrefixGranularityRefinesKeys) {
  SpyPolicy as_spy, prefix_spy;
  SimulationEngine as_engine(gt_, arrivals_, no_background());
  (void)as_engine.run(as_spy);
  RunConfig config = no_background();
  config.granularity = Granularity::Prefix;
  SimulationEngine prefix_engine(gt_, arrivals_, config);
  (void)prefix_engine.run(prefix_spy);
  EXPECT_GT(prefix_spy.keys.size(), as_spy.keys.size());
}

TEST_F(EngineTest, ExcludeTransitRemovesTransitOptions) {
  SpyPolicy spy;
  RunConfig config = no_background();
  config.exclude_transit = true;
  SimulationEngine engine(gt_, arrivals_, config);
  (void)engine.run(spy);
  for (const auto& c : spy.contexts) {
    for (const OptionId opt : c.options) {
      EXPECT_NE(gt_.option_table().get(opt).kind, RelayKind::Transit);
    }
  }
}

TEST_F(EngineTest, EligibilityFilterShrinksEvaluation) {
  SpyPolicy spy;
  RunConfig config = no_background();
  config.min_pair_calls_for_eval = 100;
  SimulationEngine engine(gt_, arrivals_, config);
  const RunResult r = engine.run(spy);
  EXPECT_EQ(r.calls, 5'000);
  EXPECT_LT(r.evaluated_calls, 5'000);
  EXPECT_GT(r.evaluated_calls, 0);
  EXPECT_EQ(r.pnr.total(), r.evaluated_calls);
}

TEST_F(EngineTest, ValuesCollectedPerMetric) {
  DefaultPolicy policy;
  SimulationEngine engine(gt_, arrivals_, no_background());
  const RunResult r = engine.run(policy);
  for (const Metric m : kAllMetrics) {
    EXPECT_EQ(r.values[metric_index(m)].size(), 5'000u);
  }
}

TEST_F(EngineTest, ValuesCollectionCanBeDisabled) {
  DefaultPolicy policy;
  RunConfig config = no_background();
  config.collect_values = false;
  SimulationEngine engine(gt_, arrivals_, config);
  const RunResult r = engine.run(policy);
  EXPECT_TRUE(r.values[0].empty());
}

TEST_F(EngineTest, ByCountryCollection) {
  DefaultPolicy policy;
  RunConfig config = no_background();
  config.collect_by_country = true;
  SimulationEngine engine(gt_, arrivals_, config);
  const RunResult r = engine.run(policy);
  EXPECT_GT(r.by_country.size(), 2u);
  std::int64_t total = 0;
  for (const auto& [c, acc] : r.by_country) total += acc.total();
  // Every international call is attributed to both sides.
  EXPECT_EQ(total, 2 * r.pnr_international.total());
}

TEST_F(EngineTest, DefaultPolicyUsesOnlyDirect) {
  DefaultPolicy policy;
  SimulationEngine engine(gt_, arrivals_, no_background());
  const RunResult r = engine.run(policy);
  EXPECT_EQ(r.used_direct, 5'000);
  EXPECT_EQ(r.used_bounce, 0);
  EXPECT_EQ(r.used_transit, 0);
  EXPECT_DOUBLE_EQ(r.relayed_fraction(), 0.0);
}

TEST_F(EngineTest, InternationalDomesticSplitConsistent) {
  DefaultPolicy policy;
  SimulationEngine engine(gt_, arrivals_, no_background());
  const RunResult r = engine.run(policy);
  EXPECT_EQ(r.pnr_international.total() + r.pnr_domestic.total(), r.evaluated_calls);
}

TEST_F(EngineTest, BackgroundRelayTrafficSeedsHistoryWithoutEvaluation) {
  SpyPolicy spy;
  RunConfig config;
  config.background_relay_fraction = 0.10;
  SimulationEngine engine(gt_, arrivals_, config);
  const RunResult r = engine.run(spy);
  // Roughly 10% of calls bypass the policy but are still observed.
  EXPECT_NEAR(static_cast<double>(r.calls) / 5000.0, 0.9, 0.03);
  EXPECT_EQ(spy.observations.size(), 5'000u);
  EXPECT_EQ(spy.contexts.size(), static_cast<std::size_t>(r.calls));
  // Some of the forced observations are on relayed options.
  int relayed_obs = 0;
  for (const auto& o : spy.observations) {
    if (o.option != RelayOptionTable::direct_id()) ++relayed_obs;
  }
  EXPECT_GT(relayed_obs, 200);
}

TEST_F(EngineTest, DeterministicAcrossRuns) {
  DefaultPolicy p1, p2;
  SimulationEngine e1(gt_, arrivals_, no_background());
  SimulationEngine e2(gt_, arrivals_, no_background());
  const RunResult a = e1.run(p1);
  const RunResult b = e2.run(p2);
  EXPECT_DOUBLE_EQ(a.pnr.pnr_any(), b.pnr.pnr_any());
  EXPECT_DOUBLE_EQ(a.values[0][123], b.values[0][123]);
}

}  // namespace
}  // namespace via
