#include "netsim/groundtruth.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/linearize.h"

namespace via {
namespace {

class GroundTruthTest : public ::testing::Test {
 protected:
  World world_{{.num_ases = 40, .num_relays = 10, .seed = 21}};
  GroundTruth gt_{world_};
};

TEST_F(GroundTruthTest, DayMeanMemoized) {
  const auto opts = gt_.candidate_options(1, 2);
  for (const OptionId opt : opts) {
    const PathPerformance a = gt_.day_mean(1, 2, opt, 3);
    const PathPerformance b = gt_.day_mean(1, 2, opt, 3);
    EXPECT_EQ(a, b);
  }
}

GroundTruthConfig exact_composition_config() {
  // Disable the model-violation quirk and day wobble so relay paths
  // compose exactly from their segments.
  GroundTruthConfig config;
  config.quirk_cv_rtt = config.quirk_cv_loss = config.quirk_cv_jitter = 0.0;
  config.wobble_cv_rtt = config.wobble_cv_loss = config.wobble_cv_jitter = 0.0;
  return config;
}

TEST_F(GroundTruthTest, BounceComposesSegments) {
  GroundTruth exact(world_, exact_composition_config());
  const auto opts = exact.candidate_options(1, 2);
  for (const OptionId opt : opts) {
    const RelayOption& o = exact.option_table().get(opt);
    if (o.kind != RelayKind::Bounce) continue;
    const PathPerformance expected = compose_segments(exact.segment_day_mean(1, o.a, 4),
                                                      exact.segment_day_mean(2, o.a, 4));
    const PathPerformance actual = exact.day_mean(1, 2, opt, 4);
    for (const Metric m : kAllMetrics) EXPECT_NEAR(actual.get(m), expected.get(m), 1e-9);
    return;
  }
  FAIL() << "no bounce candidate found";
}

TEST_F(GroundTruthTest, RelayPathsDeviateFromCleanComposition) {
  // With default config the quirk/wobble must actually perturb relayed
  // paths relative to the exact composition (this is what caps prediction
  // accuracy at paper-like levels).
  const auto opts = gt_.candidate_options(1, 2);
  int deviating = 0, relayed = 0;
  for (const OptionId opt : opts) {
    const RelayOption& o = gt_.option_table().get(opt);
    if (o.kind != RelayKind::Bounce) continue;
    ++relayed;
    const PathPerformance expected = compose_segments(gt_.segment_day_mean(1, o.a, 4),
                                                      gt_.segment_day_mean(2, o.a, 4));
    const PathPerformance actual = gt_.day_mean(1, 2, opt, 4);
    if (std::abs(actual.rtt_ms - expected.rtt_ms) > 0.01 * expected.rtt_ms) ++deviating;
  }
  ASSERT_GT(relayed, 0);
  EXPECT_GT(deviating, 0);
}

TEST_F(GroundTruthTest, TransitIncludesBackbone) {
  GroundTruth exact(world_, exact_composition_config());
  const auto opts = exact.candidate_options(1, 2);
  for (const OptionId opt : opts) {
    const RelayOption& o = exact.option_table().get(opt);
    if (o.kind != RelayKind::Transit) continue;
    const PathPerformance p = exact.day_mean(1, 2, opt, 0);
    // RTT must be at least the backbone propagation plus both segments'
    // last-mile floors; a crude but effective lower bound: backbone alone.
    EXPECT_GT(p.rtt_ms, exact.backbone(o.a, o.b).rtt_ms);
    return;
  }
  FAIL() << "no transit candidate found";
}

TEST_F(GroundTruthTest, TransitIngressIsNearerRelay) {
  const auto opts = gt_.candidate_options(1, 2);
  for (const OptionId opt : opts) {
    const RelayOption& o = gt_.option_table().get(opt);
    if (o.kind != RelayKind::Transit) continue;
    const RelayId ingress = gt_.transit_ingress(1, opt);
    EXPECT_TRUE(ingress == o.a || ingress == o.b);
    const double d_in = gt_.path_model().segment_base(1, ingress).rtt_ms;
    const RelayId other = ingress == o.a ? o.b : o.a;
    EXPECT_LE(d_in, gt_.path_model().segment_base(1, other).rtt_ms);
    return;
  }
  FAIL() << "no transit candidate found";
}

TEST_F(GroundTruthTest, TransitIngressMinusOneForDirectAndBounce) {
  EXPECT_EQ(gt_.transit_ingress(1, RelayOptionTable::direct_id()), -1);
}

TEST_F(GroundTruthTest, CandidatesStartWithDirectAndAreUnique) {
  const auto opts = gt_.candidate_options(3, 7);
  ASSERT_FALSE(opts.empty());
  EXPECT_EQ(opts.front(), RelayOptionTable::direct_id());
  const std::set<OptionId> unique(opts.begin(), opts.end());
  EXPECT_EQ(unique.size(), opts.size());
}

TEST_F(GroundTruthTest, CandidatesContainBouncesAndTransits) {
  const auto opts = gt_.candidate_options(3, 7);
  int bounce = 0, transit = 0;
  for (const OptionId opt : opts) {
    switch (gt_.option_table().get(opt).kind) {
      case RelayKind::Bounce:
        ++bounce;
        break;
      case RelayKind::Transit:
        ++transit;
        break;
      default:
        break;
    }
  }
  EXPECT_GE(bounce, 4);
  EXPECT_GE(transit, 4);
}

TEST_F(GroundTruthTest, CandidatesSymmetricInPairOrder) {
  const auto ab = gt_.candidate_options(3, 7);
  const auto ba = gt_.candidate_options(7, 3);
  ASSERT_EQ(ab.size(), ba.size());
  for (std::size_t i = 0; i < ab.size(); ++i) EXPECT_EQ(ab[i], ba[i]);
}

TEST_F(GroundTruthTest, PairedSamplingSameCallSameOption) {
  const auto opts = gt_.candidate_options(1, 2);
  for (const OptionId opt : opts) {
    const PathPerformance a = gt_.sample_call(99, 1, 2, opt, 5000);
    const PathPerformance b = gt_.sample_call(99, 1, 2, opt, 5000);
    EXPECT_EQ(a, b);
  }
}

TEST_F(GroundTruthTest, DifferentCallsDifferentDraws) {
  const PathPerformance a = gt_.sample_call(1, 1, 2, 0, 5000);
  const PathPerformance b = gt_.sample_call(2, 1, 2, 0, 5000);
  EXPECT_NE(a.rtt_ms, b.rtt_ms);
}

TEST_F(GroundTruthTest, SampleCentersOnDayMean) {
  const PathPerformance mean = gt_.day_mean(1, 2, 0, 0);
  double rtt_sum = 0.0;
  const int n = 4000;
  for (CallId id = 0; id < n; ++id) {
    rtt_sum += gt_.sample_call(id, 1, 2, 0, 40'000).rtt_ms;
  }
  // Samples include wireless extras, so the mean is slightly above.
  EXPECT_NEAR(rtt_sum / n, mean.rtt_ms, mean.rtt_ms * 0.15 + 15.0);
}

TEST_F(GroundTruthTest, WirelessFractionMatchesConfig) {
  int wireless = 0;
  const int n = 20'000;
  for (CallId id = 0; id < n; ++id) {
    if (gt_.call_is_wireless(id)) ++wireless;
  }
  EXPECT_NEAR(wireless / static_cast<double>(n), gt_.config().wireless_fraction, 0.01);
}

TEST_F(GroundTruthTest, SamplesClampedToSaneRanges) {
  for (CallId id = 0; id < 5000; ++id) {
    const PathPerformance p = gt_.sample_call(id, 1, 2, 0, 1000);
    EXPECT_GE(p.rtt_ms, 0.0);
    EXPECT_LE(p.rtt_ms, 2000.0);
    EXPECT_GE(p.loss_pct, 0.0);
    EXPECT_LE(p.loss_pct, 50.0);
    EXPECT_GE(p.jitter_ms, 0.0);
    EXPECT_LE(p.jitter_ms, 300.0);
  }
}

TEST_F(GroundTruthTest, SetAllowedRelaysFiltersCandidates) {
  std::vector<bool> allowed(static_cast<std::size_t>(world_.num_relays()), false);
  allowed[0] = true;
  allowed[1] = true;
  gt_.set_allowed_relays(allowed);
  const auto opts = gt_.candidate_options(5, 9);
  for (const OptionId opt : opts) {
    const RelayOption& o = gt_.option_table().get(opt);
    if (o.kind == RelayKind::Direct) continue;
    EXPECT_TRUE(o.a == 0 || o.a == 1);
    if (o.kind == RelayKind::Transit) {
      EXPECT_TRUE(o.b == 0 || o.b == 1);
    }
  }
}

TEST_F(GroundTruthTest, NearestRelaysSortedByProximity) {
  const auto near = gt_.nearest_relays(4);
  ASSERT_EQ(static_cast<int>(near.size()), world_.num_relays());
  for (std::size_t i = 1; i < near.size(); ++i) {
    EXPECT_LE(gt_.path_model().segment_base(4, near[i - 1]).rtt_ms,
              gt_.path_model().segment_base(4, near[i]).rtt_ms);
  }
}

TEST_F(GroundTruthTest, DayMeansVaryAcrossDays) {
  // Congestion dynamics must actually move the daily averages.
  int changed = 0;
  for (int day = 1; day < 20; ++day) {
    if (gt_.day_mean(1, 2, 0, day).rtt_ms != gt_.day_mean(1, 2, 0, day - 1).rtt_ms) ++changed;
  }
  EXPECT_GT(changed, 10);
}

}  // namespace
}  // namespace via
