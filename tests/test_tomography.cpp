#include "core/tomography.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/linearize.h"
#include "util/rng.h"

namespace via {
namespace {

// A fixture with a synthetic ground truth of segment values: segments are
// (AS, relay) RTT/loss/jitter triples; observations are exact sums, so the
// solver should recover the segments almost perfectly.
class TomographyFixture : public ::testing::Test {
 protected:
  TomographyFixture() {
    backbone_ = [](RelayId a, RelayId b) {
      if (a == b) return PathPerformance{};
      return PathPerformance{20.0, 0.01, 0.3};
    };
  }

  [[nodiscard]] PathPerformance true_segment(AsId as, RelayId r) const {
    // Deterministic pseudo-random but stable segment truth.
    const double u = hashed_uniform(hash_mix(777, static_cast<std::uint64_t>(as),
                                             static_cast<std::uint64_t>(r)));
    return PathPerformance{30.0 + 100.0 * u, 0.1 + 0.8 * u, 1.0 + 4.0 * u};
  }

  void add_bounce_obs(HistoryWindow& w, AsId s, AsId d, RelayId r, int copies = 5) {
    const OptionId opt = options_.intern_bounce(r);
    const PathPerformance path = compose_segments(true_segment(s, r), true_segment(d, r));
    for (int i = 0; i < copies; ++i) {
      Observation o;
      o.src_as = s;
      o.dst_as = d;
      o.option = opt;
      o.perf = path;
      w.add(o);
    }
  }

  void add_transit_obs(HistoryWindow& w, AsId s, AsId d, RelayId r1, RelayId r2,
                       int copies = 5) {
    const OptionId opt = options_.intern_transit(r1, r2);
    const PathPerformance path =
        compose_segments(true_segment(s, r1), backbone_(r1, r2), true_segment(d, r2));
    for (int i = 0; i < copies; ++i) {
      Observation o;
      o.src_as = s;
      o.dst_as = d;
      o.option = opt;
      o.ingress = r1;
      o.perf = path;
      w.add(o);
    }
  }

  RelayOptionTable options_;
  BackboneFn backbone_;
};

TEST_F(TomographyFixture, RecoversSegmentsFromBounces) {
  HistoryWindow w(&options_);
  // Overlapping bounce paths through relay 0 covering ASes 1..4.
  add_bounce_obs(w, 1, 2, 0);
  add_bounce_obs(w, 1, 3, 0);
  add_bounce_obs(w, 2, 3, 0);
  add_bounce_obs(w, 2, 4, 0);
  add_bounce_obs(w, 3, 4, 0);

  TomographySolver solver(options_, backbone_, {.gauss_seidel_sweeps = 60});
  solver.solve(w);
  EXPECT_GT(solver.equation_count(), 0u);

  for (AsId as = 1; as <= 4; ++as) {
    const SegmentEstimate* est = solver.segment(as, 0);
    ASSERT_NE(est, nullptr) << "segment " << as;
    const PathPerformance truth = true_segment(as, 0);
    EXPECT_NEAR(delinearize(Metric::Rtt, est->lin_mean[0]), truth.rtt_ms,
                0.05 * truth.rtt_ms + 2.0)
        << "AS " << as;
  }
}

TEST_F(TomographyFixture, PredictsUnseenPath) {
  // The Figure 11 scenario: learn (1,r0), (2,r0), (3,r0), (4,r0) from three
  // observed pairs, then predict the never-observed pair (3,4).
  HistoryWindow w(&options_);
  add_bounce_obs(w, 1, 2, 0);
  add_bounce_obs(w, 1, 3, 0);
  add_bounce_obs(w, 2, 4, 0);
  add_bounce_obs(w, 1, 4, 0);
  add_bounce_obs(w, 2, 3, 0);

  TomographySolver solver(options_, backbone_, {.gauss_seidel_sweeps = 60});
  solver.solve(w);

  const OptionId bounce0 = options_.intern_bounce(0);
  std::array<double, kNumMetrics> mean{}, sem{};
  ASSERT_TRUE(solver.predict_lin(3, 4, bounce0, mean, sem));
  const PathPerformance truth = compose_segments(true_segment(3, 0), true_segment(4, 0));
  EXPECT_NEAR(delinearize(Metric::Rtt, mean[0]), truth.rtt_ms, 0.08 * truth.rtt_ms + 3.0);
  EXPECT_NEAR(delinearize(Metric::Loss, mean[1]), truth.loss_pct, 0.3);
  EXPECT_NEAR(delinearize(Metric::Jitter, mean[2]), truth.jitter_ms, 1.0);
}

TEST_F(TomographyFixture, TransitSubtractsBackbone) {
  HistoryWindow w(&options_);
  add_transit_obs(w, 1, 2, 0, 1);
  add_transit_obs(w, 1, 3, 0, 1);
  add_transit_obs(w, 4, 2, 0, 1);
  add_transit_obs(w, 4, 3, 0, 1);

  TomographySolver solver(options_, backbone_, {.gauss_seidel_sweeps = 60});
  solver.solve(w);

  const SegmentEstimate* est = solver.segment(1, 0);
  ASSERT_NE(est, nullptr);
  const PathPerformance truth = true_segment(1, 0);
  // If the backbone were not subtracted, the estimate would be off by
  // ~10 ms (half the 20 ms backbone RTT).
  EXPECT_NEAR(delinearize(Metric::Rtt, est->lin_mean[0]), truth.rtt_ms, 5.0);
}

TEST_F(TomographyFixture, PredictFailsForUncoveredSegment) {
  HistoryWindow w(&options_);
  add_bounce_obs(w, 1, 2, 0);
  TomographySolver solver(options_, backbone_, {});
  solver.solve(w);
  const OptionId bounce1 = options_.intern_bounce(1);  // relay 1 never observed
  std::array<double, kNumMetrics> mean{}, sem{};
  EXPECT_FALSE(solver.predict_lin(1, 2, bounce1, mean, sem));
}

TEST_F(TomographyFixture, PredictFailsForDirect) {
  HistoryWindow w(&options_);
  add_bounce_obs(w, 1, 2, 0);
  TomographySolver solver(options_, backbone_, {});
  solver.solve(w);
  std::array<double, kNumMetrics> mean{}, sem{};
  EXPECT_FALSE(solver.predict_lin(1, 2, RelayOptionTable::direct_id(), mean, sem));
}

TEST_F(TomographyFixture, MinSamplesFilterSkipsThinPaths) {
  HistoryWindow w(&options_);
  add_bounce_obs(w, 1, 2, 0, /*copies=*/1);  // below the threshold
  TomographySolver solver(options_, backbone_, {.min_samples_per_path = 2});
  solver.solve(w);
  EXPECT_EQ(solver.equation_count(), 0u);
  EXPECT_EQ(solver.segment_count(), 0u);
}

TEST_F(TomographyFixture, SemShrinksWithMoreEvidence) {
  HistoryWindow thin(&options_);
  add_bounce_obs(thin, 1, 2, 0, 2);
  add_bounce_obs(thin, 1, 3, 0, 2);
  add_bounce_obs(thin, 2, 3, 0, 2);
  TomographySolver s1(options_, backbone_, {.gauss_seidel_sweeps = 40});
  s1.solve(thin);

  HistoryWindow dense(&options_);
  add_bounce_obs(dense, 1, 2, 0, 60);
  add_bounce_obs(dense, 1, 3, 0, 60);
  add_bounce_obs(dense, 2, 3, 0, 60);
  TomographySolver s2(options_, backbone_, {.gauss_seidel_sweeps = 40});
  s2.solve(dense);

  const auto* thin_est = s1.segment(1, 0);
  const auto* dense_est = s2.segment(1, 0);
  ASSERT_NE(thin_est, nullptr);
  ASSERT_NE(dense_est, nullptr);
  EXPECT_LT(dense_est->lin_sem[0], thin_est->lin_sem[0]);
}

TEST_F(TomographyFixture, EmptyWindowIsHarmless) {
  HistoryWindow w(&options_);
  TomographySolver solver(options_, backbone_, {});
  solver.solve(w);
  EXPECT_EQ(solver.segment_count(), 0u);
}

TEST_F(TomographyFixture, SolveIsIdempotentPerWindow) {
  HistoryWindow w(&options_);
  add_bounce_obs(w, 1, 2, 0);
  add_bounce_obs(w, 1, 3, 0);
  add_bounce_obs(w, 2, 3, 0);
  TomographySolver solver(options_, backbone_, {});
  solver.solve(w);
  const double first = solver.segment(1, 0)->lin_mean[0];
  solver.solve(w);
  EXPECT_DOUBLE_EQ(solver.segment(1, 0)->lin_mean[0], first);
}

// Property sweep: with noisy observations the solver's error stays bounded.
class TomographyNoise : public ::testing::TestWithParam<double> {};

TEST_P(TomographyNoise, BoundedErrorUnderNoise) {
  const double noise_cv = GetParam();
  RelayOptionTable options;
  auto backbone = [](RelayId, RelayId) { return PathPerformance{20.0, 0.01, 0.3}; };
  HistoryWindow w(&options);
  Rng rng(hash_mix(static_cast<std::uint64_t>(noise_cv * 100), 3));

  auto true_segment = [](AsId as, RelayId r) {
    const double u = hashed_uniform(hash_mix(555, static_cast<std::uint64_t>(as),
                                             static_cast<std::uint64_t>(r)));
    return PathPerformance{40.0 + 80.0 * u, 0.2 + 0.5 * u, 1.5 + 3.0 * u};
  };

  // Dense coverage: 6 ASes x 2 relays, all pairs bounced through both.
  for (AsId s = 0; s < 6; ++s) {
    for (AsId d = s + 1; d < 6; ++d) {
      for (RelayId r = 0; r < 2; ++r) {
        const OptionId opt = options.intern_bounce(r);
        const PathPerformance clean = compose_segments(true_segment(s, r), true_segment(d, r));
        for (int i = 0; i < 10; ++i) {
          Observation o;
          o.src_as = s;
          o.dst_as = d;
          o.option = opt;
          o.perf = {clean.rtt_ms * rng.lognormal_mean_cv(1.0, noise_cv),
                    clean.loss_pct * rng.lognormal_mean_cv(1.0, noise_cv),
                    clean.jitter_ms * rng.lognormal_mean_cv(1.0, noise_cv)};
          w.add(o);
        }
      }
    }
  }

  TomographySolver solver(options, backbone, {.gauss_seidel_sweeps = 60});
  solver.solve(w);
  double worst_rel_err = 0.0;
  for (AsId as = 0; as < 6; ++as) {
    const SegmentEstimate* est = solver.segment(as, 0);
    ASSERT_NE(est, nullptr);
    const double truth = true_segment(as, 0).rtt_ms;
    worst_rel_err = std::max(
        worst_rel_err, std::abs(delinearize(Metric::Rtt, est->lin_mean[0]) - truth) / truth);
  }
  EXPECT_LT(worst_rel_err, 0.12 + noise_cv);
}

INSTANTIATE_TEST_SUITE_P(NoiseLevels, TomographyNoise, ::testing::Values(0.0, 0.1, 0.3));

}  // namespace
}  // namespace via
