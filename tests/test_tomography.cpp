#include "core/tomography.h"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>

#include "common/linearize.h"
#include "util/rng.h"

namespace via {
namespace {

// A fixture with a synthetic ground truth of segment values: segments are
// (AS, relay) RTT/loss/jitter triples; observations are exact sums, so the
// solver should recover the segments almost perfectly.
class TomographyFixture : public ::testing::Test {
 protected:
  TomographyFixture() {
    backbone_ = [](RelayId a, RelayId b) {
      if (a == b) return PathPerformance{};
      return PathPerformance{20.0, 0.01, 0.3};
    };
  }

  [[nodiscard]] PathPerformance true_segment(AsId as, RelayId r) const {
    // Deterministic pseudo-random but stable segment truth.
    const double u = hashed_uniform(hash_mix(777, static_cast<std::uint64_t>(as),
                                             static_cast<std::uint64_t>(r)));
    return PathPerformance{30.0 + 100.0 * u, 0.1 + 0.8 * u, 1.0 + 4.0 * u};
  }

  void add_bounce_obs(HistoryWindow& w, AsId s, AsId d, RelayId r, int copies = 5) {
    const OptionId opt = options_.intern_bounce(r);
    const PathPerformance path = compose_segments(true_segment(s, r), true_segment(d, r));
    for (int i = 0; i < copies; ++i) {
      Observation o;
      o.src_as = s;
      o.dst_as = d;
      o.option = opt;
      o.perf = path;
      w.add(o);
    }
  }

  void add_transit_obs(HistoryWindow& w, AsId s, AsId d, RelayId r1, RelayId r2,
                       int copies = 5) {
    const OptionId opt = options_.intern_transit(r1, r2);
    const PathPerformance path =
        compose_segments(true_segment(s, r1), backbone_(r1, r2), true_segment(d, r2));
    for (int i = 0; i < copies; ++i) {
      Observation o;
      o.src_as = s;
      o.dst_as = d;
      o.option = opt;
      o.ingress = r1;
      o.perf = path;
      w.add(o);
    }
  }

  RelayOptionTable options_;
  BackboneFn backbone_;
};

TEST_F(TomographyFixture, RecoversSegmentsFromBounces) {
  HistoryWindow w(&options_);
  // Overlapping bounce paths through relay 0 covering ASes 1..4.
  add_bounce_obs(w, 1, 2, 0);
  add_bounce_obs(w, 1, 3, 0);
  add_bounce_obs(w, 2, 3, 0);
  add_bounce_obs(w, 2, 4, 0);
  add_bounce_obs(w, 3, 4, 0);

  TomographySolver solver(options_, backbone_, {.gauss_seidel_sweeps = 60});
  solver.solve(w);
  EXPECT_GT(solver.equation_count(), 0u);

  for (AsId as = 1; as <= 4; ++as) {
    const SegmentEstimate* est = solver.segment(as, 0);
    ASSERT_NE(est, nullptr) << "segment " << as;
    const PathPerformance truth = true_segment(as, 0);
    EXPECT_NEAR(delinearize(Metric::Rtt, est->lin_mean[0]), truth.rtt_ms,
                0.05 * truth.rtt_ms + 2.0)
        << "AS " << as;
  }
}

TEST_F(TomographyFixture, PredictsUnseenPath) {
  // The Figure 11 scenario: learn (1,r0), (2,r0), (3,r0), (4,r0) from three
  // observed pairs, then predict the never-observed pair (3,4).
  HistoryWindow w(&options_);
  add_bounce_obs(w, 1, 2, 0);
  add_bounce_obs(w, 1, 3, 0);
  add_bounce_obs(w, 2, 4, 0);
  add_bounce_obs(w, 1, 4, 0);
  add_bounce_obs(w, 2, 3, 0);

  TomographySolver solver(options_, backbone_, {.gauss_seidel_sweeps = 60});
  solver.solve(w);

  const OptionId bounce0 = options_.intern_bounce(0);
  std::array<double, kNumMetrics> mean{}, sem{};
  ASSERT_TRUE(solver.predict_lin(3, 4, bounce0, mean, sem));
  const PathPerformance truth = compose_segments(true_segment(3, 0), true_segment(4, 0));
  EXPECT_NEAR(delinearize(Metric::Rtt, mean[0]), truth.rtt_ms, 0.08 * truth.rtt_ms + 3.0);
  EXPECT_NEAR(delinearize(Metric::Loss, mean[1]), truth.loss_pct, 0.3);
  EXPECT_NEAR(delinearize(Metric::Jitter, mean[2]), truth.jitter_ms, 1.0);
}

TEST_F(TomographyFixture, TransitSubtractsBackbone) {
  HistoryWindow w(&options_);
  add_transit_obs(w, 1, 2, 0, 1);
  add_transit_obs(w, 1, 3, 0, 1);
  add_transit_obs(w, 4, 2, 0, 1);
  add_transit_obs(w, 4, 3, 0, 1);

  TomographySolver solver(options_, backbone_, {.gauss_seidel_sweeps = 60});
  solver.solve(w);

  const SegmentEstimate* est = solver.segment(1, 0);
  ASSERT_NE(est, nullptr);
  const PathPerformance truth = true_segment(1, 0);
  // If the backbone were not subtracted, the estimate would be off by
  // ~10 ms (half the 20 ms backbone RTT).
  EXPECT_NEAR(delinearize(Metric::Rtt, est->lin_mean[0]), truth.rtt_ms, 5.0);
}

TEST_F(TomographyFixture, PredictFailsForUncoveredSegment) {
  HistoryWindow w(&options_);
  add_bounce_obs(w, 1, 2, 0);
  TomographySolver solver(options_, backbone_, {});
  solver.solve(w);
  const OptionId bounce1 = options_.intern_bounce(1);  // relay 1 never observed
  std::array<double, kNumMetrics> mean{}, sem{};
  EXPECT_FALSE(solver.predict_lin(1, 2, bounce1, mean, sem));
}

TEST_F(TomographyFixture, PredictFailsForDirect) {
  HistoryWindow w(&options_);
  add_bounce_obs(w, 1, 2, 0);
  TomographySolver solver(options_, backbone_, {});
  solver.solve(w);
  std::array<double, kNumMetrics> mean{}, sem{};
  EXPECT_FALSE(solver.predict_lin(1, 2, RelayOptionTable::direct_id(), mean, sem));
}

TEST_F(TomographyFixture, MinSamplesFilterSkipsThinPaths) {
  HistoryWindow w(&options_);
  add_bounce_obs(w, 1, 2, 0, /*copies=*/1);  // below the threshold
  TomographySolver solver(options_, backbone_, {.min_samples_per_path = 2});
  solver.solve(w);
  EXPECT_EQ(solver.equation_count(), 0u);
  EXPECT_EQ(solver.segment_count(), 0u);
}

TEST_F(TomographyFixture, SemShrinksWithMoreEvidence) {
  HistoryWindow thin(&options_);
  add_bounce_obs(thin, 1, 2, 0, 2);
  add_bounce_obs(thin, 1, 3, 0, 2);
  add_bounce_obs(thin, 2, 3, 0, 2);
  TomographySolver s1(options_, backbone_, {.gauss_seidel_sweeps = 40});
  s1.solve(thin);

  HistoryWindow dense(&options_);
  add_bounce_obs(dense, 1, 2, 0, 60);
  add_bounce_obs(dense, 1, 3, 0, 60);
  add_bounce_obs(dense, 2, 3, 0, 60);
  TomographySolver s2(options_, backbone_, {.gauss_seidel_sweeps = 40});
  s2.solve(dense);

  const auto* thin_est = s1.segment(1, 0);
  const auto* dense_est = s2.segment(1, 0);
  ASSERT_NE(thin_est, nullptr);
  ASSERT_NE(dense_est, nullptr);
  EXPECT_LT(dense_est->lin_sem[0], thin_est->lin_sem[0]);
}

TEST_F(TomographyFixture, EmptyWindowIsHarmless) {
  HistoryWindow w(&options_);
  TomographySolver solver(options_, backbone_, {});
  solver.solve(w);
  EXPECT_EQ(solver.segment_count(), 0u);
}

TEST_F(TomographyFixture, SolveIsIdempotentPerWindow) {
  HistoryWindow w(&options_);
  add_bounce_obs(w, 1, 2, 0);
  add_bounce_obs(w, 1, 3, 0);
  add_bounce_obs(w, 2, 3, 0);
  TomographySolver solver(options_, backbone_, {});
  solver.solve(w);
  const double first = solver.segment(1, 0)->lin_mean[0];
  solver.solve(w);
  EXPECT_DOUBLE_EQ(solver.segment(1, 0)->lin_mean[0], first);
}

// Property sweep: with noisy observations the solver's error stays bounded.
class TomographyNoise : public ::testing::TestWithParam<double> {};

TEST_P(TomographyNoise, BoundedErrorUnderNoise) {
  const double noise_cv = GetParam();
  RelayOptionTable options;
  auto backbone = [](RelayId, RelayId) { return PathPerformance{20.0, 0.01, 0.3}; };
  HistoryWindow w(&options);
  Rng rng(hash_mix(static_cast<std::uint64_t>(noise_cv * 100), 3));

  auto true_segment = [](AsId as, RelayId r) {
    const double u = hashed_uniform(hash_mix(555, static_cast<std::uint64_t>(as),
                                             static_cast<std::uint64_t>(r)));
    return PathPerformance{40.0 + 80.0 * u, 0.2 + 0.5 * u, 1.5 + 3.0 * u};
  };

  // Dense coverage: 6 ASes x 2 relays, all pairs bounced through both.
  for (AsId s = 0; s < 6; ++s) {
    for (AsId d = s + 1; d < 6; ++d) {
      for (RelayId r = 0; r < 2; ++r) {
        const OptionId opt = options.intern_bounce(r);
        const PathPerformance clean = compose_segments(true_segment(s, r), true_segment(d, r));
        for (int i = 0; i < 10; ++i) {
          Observation o;
          o.src_as = s;
          o.dst_as = d;
          o.option = opt;
          o.perf = {clean.rtt_ms * rng.lognormal_mean_cv(1.0, noise_cv),
                    clean.loss_pct * rng.lognormal_mean_cv(1.0, noise_cv),
                    clean.jitter_ms * rng.lognormal_mean_cv(1.0, noise_cv)};
          w.add(o);
        }
      }
    }
  }

  TomographySolver solver(options, backbone, {.gauss_seidel_sweeps = 60});
  solver.solve(w);
  double worst_rel_err = 0.0;
  for (AsId as = 0; as < 6; ++as) {
    const SegmentEstimate* est = solver.segment(as, 0);
    ASSERT_NE(est, nullptr);
    const double truth = true_segment(as, 0).rtt_ms;
    worst_rel_err = std::max(
        worst_rel_err, std::abs(delinearize(Metric::Rtt, est->lin_mean[0]) - truth) / truth);
  }
  EXPECT_LT(worst_rel_err, 0.12 + noise_cv);
}

INSTANTIATE_TEST_SUITE_P(NoiseLevels, TomographyNoise, ::testing::Values(0.0, 0.1, 0.3));

// ---------------------------------------------------------------- §6e:
// parallel solve determinism and the convergence early exit.

std::uint64_t fnv1a_u64(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffULL;
    h *= 1099511628211ULL;
  }
  return h;
}

/// FNV-1a over the exact bit patterns of every segment estimate, in solve
/// order — any FP difference anywhere flips the hash.
std::uint64_t solver_hash(const TomographySolver& solver) {
  std::uint64_t h = 14695981039346656037ULL;
  solver.for_each_segment([&](std::uint64_t key, const SegmentEstimate& est) {
    h = fnv1a_u64(h, key);
    for (std::size_t m = 0; m < kNumMetrics; ++m) {
      h = fnv1a_u64(h, std::bit_cast<std::uint64_t>(est.lin_mean[m]));
      h = fnv1a_u64(h, std::bit_cast<std::uint64_t>(est.lin_sem[m]));
    }
    h = fnv1a_u64(h, static_cast<std::uint64_t>(est.evidence));
  });
  return h;
}

/// A noisy window wide enough (40 ASes x 4 relays, bounce + transit mix)
/// that the parallel solver actually engages its pool.
HistoryWindow make_wide_window(RelayOptionTable& options) {
  HistoryWindow w(&options);
  Rng rng(42);
  for (int i = 0; i < 4000; ++i) {
    const auto s = static_cast<AsId>(rng.uniform_index(40));
    auto d = static_cast<AsId>(rng.uniform_index(40));
    if (d == s) d = (d + 1) % 40;
    const auto r1 = static_cast<RelayId>(rng.uniform_index(4));
    Observation o;
    o.id = i;
    o.src_as = s;
    o.dst_as = d;
    if (rng.uniform_index(2) == 0) {
      o.option = options.intern_bounce(r1);
    } else {
      auto r2 = static_cast<RelayId>(rng.uniform_index(4));
      if (r2 == r1) r2 = static_cast<RelayId>((r2 + 1) % 4);
      o.option = options.intern_transit(r1, r2);
      o.ingress = r1;
    }
    o.perf = {50.0 + rng.uniform(0, 100), rng.uniform(0, 2), 1.0 + rng.uniform(0, 4)};
    w.add(o);
  }
  return w;
}

TEST(TomographyParallel, BitIdenticalAcrossThreadCounts) {
  RelayOptionTable options;
  BackboneFn backbone = [](RelayId a, RelayId b) {
    if (a == b) return PathPerformance{};
    return PathPerformance{20.0, 0.01, 0.3};
  };
  const HistoryWindow w = make_wide_window(options);

  std::uint64_t serial_hash = 0;
  int serial_sweeps = 0;
  for (const int threads : {1, 2, 8}) {
    TomographySolver solver(options, backbone,
                            {.gauss_seidel_sweeps = 30, .solve_threads = threads});
    solver.solve(w);
    ASSERT_GE(solver.segment_count(), 64u) << "window too small to exercise the pool";
    const std::uint64_t h = solver_hash(solver);
    if (threads == 1) {
      serial_hash = h;
      serial_sweeps = solver.last_sweeps();
    } else {
      EXPECT_EQ(h, serial_hash) << threads << " threads diverged from serial";
      EXPECT_EQ(solver.last_sweeps(), serial_sweeps);
    }
  }
}

TEST(TomographyParallel, EarlyExitDeterministicAcrossThreadCounts) {
  RelayOptionTable options;
  BackboneFn backbone = [](RelayId, RelayId) { return PathPerformance{20.0, 0.01, 0.3}; };
  const HistoryWindow w = make_wide_window(options);

  std::uint64_t serial_hash = 0;
  int serial_sweeps = 0;
  for (const int threads : {1, 2, 8}) {
    TomographySolver solver(
        options, backbone,
        {.gauss_seidel_sweeps = 200, .solve_threads = threads, .convergence_tol = 1e-7});
    solver.solve(w);
    if (threads == 1) {
      serial_hash = solver_hash(solver);
      serial_sweeps = solver.last_sweeps();
    } else {
      EXPECT_EQ(solver_hash(solver), serial_hash);
      EXPECT_EQ(solver.last_sweeps(), serial_sweeps);
    }
  }
  // The tolerance actually triggered (otherwise this test pins nothing).
  EXPECT_LT(serial_sweeps, 200);
  EXPECT_GT(serial_sweeps, 1);
}

TEST(TomographyParallel, ZeroTolKeepsLegacyFixedSweeps) {
  RelayOptionTable options;
  BackboneFn backbone = [](RelayId, RelayId) { return PathPerformance{20.0, 0.01, 0.3}; };
  const HistoryWindow w = make_wide_window(options);

  TomographySolver fixed(options, backbone, {.gauss_seidel_sweeps = 25});
  fixed.solve(w);
  EXPECT_EQ(fixed.last_sweeps(), 25);

  // A converged early-exit solve still lands within numerical spitting
  // distance of the fixed-sweep answer.
  TomographySolver early(options, backbone,
                         {.gauss_seidel_sweeps = 200, .convergence_tol = 1e-9});
  early.solve(w);
  fixed.for_each_segment([&](std::uint64_t key, const SegmentEstimate& est) {
    const SegmentEstimate* other = early.segment(static_cast<AsId>(key >> 16),
                                                 static_cast<RelayId>(key & 0xffff));
    ASSERT_NE(other, nullptr);
    for (std::size_t m = 0; m < kNumMetrics; ++m) {
      EXPECT_NEAR(other->lin_mean[m], est.lin_mean[m], 1e-6);
    }
  });
}

}  // namespace
}  // namespace via
