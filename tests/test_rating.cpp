#include "quality/rating.h"

#include <gtest/gtest.h>

namespace via {
namespace {

TEST(RatingModel, Deterministic) {
  const RatingModel model;
  const PathPerformance p{150.0, 0.5, 5.0};
  for (CallId id = 0; id < 200; ++id) {
    EXPECT_EQ(model.sample_rating(id, p), model.sample_rating(id, p));
  }
}

TEST(RatingModel, SampleFractionRespected) {
  RatingModelParams params;
  params.sample_fraction = 0.10;
  const RatingModel model(params);
  const PathPerformance p{150.0, 0.5, 5.0};
  int rated = 0;
  const int n = 50'000;
  for (CallId id = 0; id < n; ++id) {
    if (model.sample_rating(id, p) > 0) ++rated;
  }
  EXPECT_NEAR(rated / static_cast<double>(n), 0.10, 0.01);
}

TEST(RatingModel, RatingsInValidRange) {
  const RatingModel model;
  const PathPerformance p{300.0, 2.0, 15.0};
  for (CallId id = 0; id < 20'000; ++id) {
    const auto r = model.sample_rating(id, p);
    EXPECT_TRUE(r == -1 || (r >= 1 && r <= 5)) << static_cast<int>(r);
  }
}

double poor_call_rate(const RatingModel& model, const PathPerformance& p, int n) {
  int rated = 0, poor = 0;
  for (CallId id = 0; id < n; ++id) {
    const auto r = model.sample_rating(id, p);
    if (r < 0) continue;
    ++rated;
    if (r <= 2) ++poor;
  }
  return rated > 0 ? static_cast<double>(poor) / rated : 0.0;
}

TEST(RatingModel, PcrRisesWithRtt) {
  RatingModelParams params;
  params.sample_fraction = 1.0;
  const RatingModel model(params);
  const double low = poor_call_rate(model, {80.0, 0.2, 3.0}, 20'000);
  const double mid = poor_call_rate(model, {350.0, 0.2, 3.0}, 20'000);
  const double high = poor_call_rate(model, {800.0, 0.2, 3.0}, 20'000);
  EXPECT_LT(low, mid);
  EXPECT_LT(mid, high);
}

TEST(RatingModel, PcrRisesWithLoss) {
  RatingModelParams params;
  params.sample_fraction = 1.0;
  const RatingModel model(params);
  const double low = poor_call_rate(model, {120.0, 0.1, 4.0}, 20'000);
  const double high = poor_call_rate(model, {120.0, 6.0, 4.0}, 20'000);
  EXPECT_LT(low + 0.05, high);
}

TEST(RatingModel, PcrRisesWithJitter) {
  RatingModelParams params;
  params.sample_fraction = 1.0;
  const RatingModel model(params);
  const double low = poor_call_rate(model, {120.0, 0.1, 2.0}, 20'000);
  const double high = poor_call_rate(model, {120.0, 0.1, 45.0}, 20'000);
  EXPECT_LT(low + 0.01, high);
}

TEST(RatingModel, OpinionScoreCentersOnMos) {
  RatingModelParams params;
  params.user_noise_stddev = 0.85;
  const RatingModel model(params);
  const PathPerformance p{150.0, 0.8, 6.0};
  const double mos = emodel_mos(p, params.emodel);
  double sum = 0.0;
  const int n = 20'000;
  for (CallId id = 0; id < n; ++id) sum += model.opinion_score(id, p);
  EXPECT_NEAR(sum / n, mos, 0.03);
}

TEST(RatingModel, DifferentSeedsGiveDifferentSelections) {
  RatingModelParams params;
  params.sample_fraction = 0.5;
  const RatingModel a(params, 1);
  const RatingModel b(params, 2);
  const PathPerformance p{100.0, 0.5, 5.0};
  int differs = 0;
  for (CallId id = 0; id < 1000; ++id) {
    if ((a.sample_rating(id, p) < 0) != (b.sample_rating(id, p) < 0)) ++differs;
  }
  EXPECT_GT(differs, 100);
}

}  // namespace
}  // namespace via
