#include "quality/packetsim.h"

#include <gtest/gtest.h>

namespace via {
namespace {

TEST(PacketSim, PacketCountMatchesDuration) {
  Rng rng(1);
  PacketSimParams params;
  params.duration_s = 10.0;
  params.packet_interval_ms = 20.0;
  const auto r = simulate_call_packets({100.0, 0.0, 2.0}, rng, params);
  EXPECT_EQ(r.packets_sent, 500);
}

TEST(PacketSim, ZeroLossChannelDropsNothing) {
  Rng rng(2);
  const auto r = simulate_call_packets({100.0, 0.0, 1.0}, rng);
  EXPECT_EQ(r.packets_lost, 0);
}

TEST(PacketSim, LossCalibratedToAverage) {
  Rng rng(3);
  PacketSimParams params;
  params.duration_s = 600.0;  // long call for tight statistics
  const auto r = simulate_call_packets({100.0, 5.0, 2.0}, rng, params);
  const double network_loss =
      100.0 * static_cast<double>(r.packets_lost) / static_cast<double>(r.packets_sent);
  EXPECT_NEAR(network_loss, 5.0, 1.0);
}

TEST(PacketSim, LossIsBursty) {
  // With mean burst length 3, consecutive losses should be common: the
  // number of distinct loss events should be well below the loss count.
  Rng rng(4);
  PacketSimParams params;
  params.duration_s = 600.0;
  params.mean_loss_burst = 5.0;
  const auto r = simulate_call_packets({100.0, 10.0, 2.0}, rng, params);
  EXPECT_GT(r.packets_lost, 1000);
}

TEST(PacketSim, HighJitterCausesLatePackets) {
  Rng rng(5);
  PacketSimParams params;
  params.duration_s = 120.0;
  const auto calm = simulate_call_packets({100.0, 0.0, 1.0}, rng, params);
  Rng rng2(5);
  const auto jittery = simulate_call_packets({100.0, 0.0, 30.0}, rng2, params);
  EXPECT_GE(jittery.packets_late, calm.packets_late);
  EXPECT_GT(jittery.playout_delay_ms, calm.playout_delay_ms);
}

TEST(PacketSim, MosDecreasesWithLoss) {
  PacketSimParams params;
  params.duration_s = 120.0;
  Rng r1(6), r2(6);
  const auto clean = simulate_call_packets({100.0, 0.0, 2.0}, r1, params);
  const auto lossy = simulate_call_packets({100.0, 8.0, 2.0}, r2, params);
  EXPECT_GT(clean.mos, lossy.mos + 0.5);
}

TEST(PacketSim, MosDecreasesWithRtt) {
  PacketSimParams params;
  params.duration_s = 120.0;
  Rng r1(7), r2(7);
  const auto fast = simulate_call_packets({60.0, 0.5, 2.0}, r1, params);
  const auto slow = simulate_call_packets({900.0, 0.5, 2.0}, r2, params);
  EXPECT_GT(fast.mos, slow.mos + 0.5);
}

TEST(PacketSim, EffectiveLossIncludesLatePackets) {
  Rng rng(8);
  PacketSimParams params;
  params.duration_s = 120.0;
  const auto r = simulate_call_packets({100.0, 2.0, 25.0}, rng, params);
  const double counted = 100.0 *
                         static_cast<double>(r.packets_lost + r.packets_late) /
                         static_cast<double>(r.packets_sent);
  EXPECT_NEAR(r.effective_loss_pct, counted, 1e-9);
}

TEST(PacketSim, DeterministicGivenSeed) {
  Rng r1(9), r2(9);
  const auto a = simulate_call_packets({150.0, 3.0, 8.0}, r1);
  const auto b = simulate_call_packets({150.0, 3.0, 8.0}, r2);
  EXPECT_EQ(a.packets_lost, b.packets_lost);
  EXPECT_EQ(a.packets_late, b.packets_late);
  EXPECT_DOUBLE_EQ(a.mos, b.mos);
}

// Validation property (paper Section 2.2): calls rated non-poor by the
// thresholds-on-averages should mostly have higher packet-trace MOS than
// calls rated poor.
TEST(PacketSim, AverageThresholdsSeparatePacketMos) {
  const PoorThresholds thresholds;
  PacketSimParams params;
  params.duration_s = 60.0;
  Rng rng(10);
  std::vector<double> poor_mos, good_mos;
  for (int i = 0; i < 800; ++i) {
    const PathPerformance avg{rng.uniform(40, 600), rng.uniform(0, 4), rng.uniform(1, 25)};
    const auto r = simulate_call_packets(avg, rng, params);
    (thresholds.any_poor(avg) ? poor_mos : good_mos).push_back(r.mos);
  }
  ASSERT_GT(poor_mos.size(), 20u);
  ASSERT_GT(good_mos.size(), 20u);
  double poor_sum = 0, good_sum = 0;
  for (const double m : poor_mos) poor_sum += m;
  for (const double m : good_mos) good_sum += m;
  EXPECT_GT(good_sum / good_mos.size(), poor_sum / poor_mos.size() + 0.3);
}

}  // namespace
}  // namespace via
