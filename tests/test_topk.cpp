#include "core/topk.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/rng.h"

namespace via {
namespace {

// Builds a predictor whose predictions we control exactly by injecting an
// empirical history with chosen means and spreads.
class TopKTest : public ::testing::Test {
 protected:
  TopKTest() : backbone_([](RelayId, RelayId) { return PathPerformance{}; }) {}

  /// Adds an option whose empirical RTT has the given mean and total spread
  /// (spread -> SEM -> confidence-interval width).
  OptionId add_option(HistoryWindow& w, RelayId relay, double mean, double spread,
                      int copies = 9) {
    const OptionId opt = options_.intern_bounce(relay);
    for (int i = 0; i < copies; ++i) {
      Observation o;
      o.src_as = 1;
      o.dst_as = 2;
      o.option = opt;
      const double offset = spread * (static_cast<double>(i) / (copies - 1) - 0.5);
      o.perf = {mean + offset, 0.5, 3.0};
      w.add(o);
    }
    candidates_.push_back(opt);
    return opt;
  }

  std::vector<RankedOption> run(const TopKConfig& config = {}) {
    Predictor p(options_, backbone_);
    p.train(window_);
    return select_top_k(p, 1, 2, candidates_, Metric::Rtt, config);
  }

  RelayOptionTable options_;
  BackboneFn backbone_;
  HistoryWindow window_{&options_};
  std::vector<OptionId> candidates_;
};

TEST_F(TopKTest, WellSeparatedOptionsGiveSingleton) {
  const OptionId best = add_option(window_, 0, 50.0, 2.0);
  add_option(window_, 1, 300.0, 2.0);
  add_option(window_, 2, 500.0, 2.0);
  const auto top = run();
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].option, best);
}

TEST_F(TopKTest, OverlappingOptionsAllKept) {
  add_option(window_, 0, 100.0, 80.0);
  add_option(window_, 1, 105.0, 80.0);
  add_option(window_, 2, 110.0, 80.0);
  const auto top = run();
  EXPECT_EQ(top.size(), 3u);
}

TEST_F(TopKTest, MixedSeparationKeepsOnlyContenders) {
  add_option(window_, 0, 100.0, 40.0);
  add_option(window_, 1, 110.0, 40.0);
  add_option(window_, 2, 900.0, 5.0);  // clearly dominated
  const auto top = run();
  EXPECT_EQ(top.size(), 2u);
  for (const auto& r : top) EXPECT_NE(r.option, candidates_[2]);
}

TEST_F(TopKTest, SeparationInvariantHolds) {
  // Random instance: every excluded option's lower bound must exceed every
  // included option's upper bound.
  Rng rng(5);
  for (int i = 0; i < 12; ++i) {
    add_option(window_, static_cast<RelayId>(i), rng.uniform(50, 400), rng.uniform(1, 150));
  }
  const auto top = run({.max_k = 100});
  ASSERT_FALSE(top.empty());

  Predictor p(options_, backbone_);
  p.train(window_);
  double max_upper_included = 0.0;
  std::vector<OptionId> included;
  for (const auto& r : top) {
    max_upper_included = std::max(max_upper_included, r.pred.upper);
    included.push_back(r.option);
  }
  for (const OptionId opt : candidates_) {
    if (std::find(included.begin(), included.end(), opt) != included.end()) continue;
    const Prediction pred = p.predict(1, 2, opt, Metric::Rtt);
    ASSERT_TRUE(pred.valid);
    EXPECT_GT(pred.lower, max_upper_included) << "excluded option not separated";
  }
}

TEST_F(TopKTest, SortedByPredictedMean) {
  add_option(window_, 0, 200.0, 120.0);
  add_option(window_, 1, 100.0, 120.0);
  add_option(window_, 2, 150.0, 120.0);
  const auto top = run();
  ASSERT_GE(top.size(), 2u);
  for (std::size_t i = 1; i < top.size(); ++i) {
    EXPECT_LE(top[i - 1].pred.mean, top[i].pred.mean);
  }
}

TEST_F(TopKTest, FixedKTakesBestMeans) {
  add_option(window_, 0, 300.0, 1.0);
  const OptionId best = add_option(window_, 1, 100.0, 1.0);
  const OptionId second = add_option(window_, 2, 200.0, 1.0);
  const auto top = run({.dynamic = false, .fixed_k = 2});
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].option, best);
  EXPECT_EQ(top[1].option, second);
}

TEST_F(TopKTest, MaxKCapsDynamicSet) {
  for (int i = 0; i < 10; ++i) add_option(window_, static_cast<RelayId>(i), 100.0, 200.0);
  const auto top = run({.max_k = 4});
  EXPECT_EQ(top.size(), 4u);
}

TEST_F(TopKTest, UnpredictableOptionsIgnored) {
  add_option(window_, 0, 100.0, 10.0);
  candidates_.push_back(options_.intern_bounce(19));  // no history, no tomography
  const auto top = run();
  EXPECT_EQ(top.size(), 1u);
}

TEST_F(TopKTest, EmptyWhenNothingPredictable) {
  candidates_.push_back(options_.intern_bounce(19));
  candidates_.push_back(RelayOptionTable::direct_id());
  const auto top = run();
  EXPECT_TRUE(top.empty());
}

// Property: the paper's key observation — the true best option is very
// likely inside the dynamic top-k even when prediction is noisy.
class TopKContainment : public ::testing::TestWithParam<double> {};

TEST_P(TopKContainment, BestOptionUsuallyContained) {
  const double noise = GetParam();
  Rng rng(hash_mix(static_cast<std::uint64_t>(noise * 100), 17));
  int contained = 0;
  const int trials = 60;
  for (int trial = 0; trial < trials; ++trial) {
    RelayOptionTable options;
    HistoryWindow window(&options);
    BackboneFn backbone = [](RelayId, RelayId) { return PathPerformance{}; };
    std::vector<OptionId> candidates;

    // 8 options with true means in [100, 250]; observations are noisy.
    OptionId best_opt = kInvalidOption;
    double best_mean = 1e18;
    for (int i = 0; i < 8; ++i) {
      const double true_mean = rng.uniform(100, 250);
      const OptionId opt = options.intern_bounce(static_cast<RelayId>(i));
      candidates.push_back(opt);
      for (int k = 0; k < 6; ++k) {
        Observation o;
        o.src_as = 1;
        o.dst_as = 2;
        o.option = opt;
        o.perf = {true_mean * rng.lognormal_mean_cv(1.0, noise), 0.5, 3.0};
        window.add(o);
      }
      if (true_mean < best_mean) {
        best_mean = true_mean;
        best_opt = opt;
      }
    }

    Predictor p(options, backbone);
    p.train(window);
    const auto top = select_top_k(p, 1, 2, candidates, Metric::Rtt, {.max_k = 8});
    for (const auto& r : top) {
      if (r.option == best_opt) {
        ++contained;
        break;
      }
    }
  }
  // With moderate noise the best option stays in the top-k most of the
  // time (the paper reports >90% for its dynamic-k rule).
  EXPECT_GT(contained, trials * 6 / 10) << "noise " << noise;
}

INSTANTIATE_TEST_SUITE_P(NoiseLevels, TopKContainment, ::testing::Values(0.05, 0.15, 0.3));

}  // namespace
}  // namespace via
