#include "core/via_policy.h"

#include <gtest/gtest.h>

namespace via {
namespace {

class ViaPolicyTest : public ::testing::Test {
 protected:
  ViaPolicyTest() {
    bounce_good_ = options_.intern_bounce(0);
    bounce_bad_ = options_.intern_bounce(1);
    candidates_ = {RelayOptionTable::direct_id(), bounce_good_, bounce_bad_};
  }

  [[nodiscard]] std::unique_ptr<ViaPolicy> make_policy(ViaConfig config = {}) {
    return std::make_unique<ViaPolicy>(
        options_, [](RelayId, RelayId) { return PathPerformance{}; }, config);
  }

  CallContext ctx(CallId id = 1, TimeSec t = 0) const {
    CallContext c;
    c.id = id;
    c.time = t;
    c.src_as = 1;
    c.dst_as = 2;
    c.key_src = 1;
    c.key_dst = 2;
    c.options = candidates_;
    return c;
  }

  Observation obs(OptionId opt, double rtt) const {
    Observation o;
    o.src_as = 1;
    o.dst_as = 2;
    o.option = opt;
    o.perf = {rtt, 0.5, 3.0};
    return o;
  }

  /// Feeds a day of measurements: direct 300ms, good bounce 100ms, bad 250ms.
  void feed_history(ViaPolicy& policy, int copies = 8) {
    for (int i = 0; i < copies; ++i) {
      policy.observe(obs(RelayOptionTable::direct_id(), 300.0 + i));
      policy.observe(obs(bounce_good_, 100.0 + i));
      policy.observe(obs(bounce_bad_, 250.0 + i));
    }
  }

  RelayOptionTable options_;
  OptionId bounce_good_ = kInvalidOption;
  OptionId bounce_bad_ = kInvalidOption;
  std::vector<OptionId> candidates_;
};

TEST_F(ViaPolicyTest, ColdStartUsesDirect) {
  ViaConfig config;
  config.epsilon = 0.0;
  auto policy = make_policy(config);
  EXPECT_EQ(policy->choose(ctx()), RelayOptionTable::direct_id());
  EXPECT_EQ(policy->stats().cold_start_direct, 1);
}

TEST_F(ViaPolicyTest, LearnsBestOptionAfterRefresh) {
  ViaConfig config;
  config.epsilon = 0.0;
  auto policy = make_policy(config);
  feed_history(*policy);
  policy->refresh(kSecondsPerDay);

  int good_picks = 0;
  const int calls = 100;
  for (int i = 0; i < calls; ++i) {
    const OptionId pick = policy->choose(ctx(static_cast<CallId>(i)));
    if (pick == bounce_good_) ++good_picks;
    policy->observe(obs(pick, pick == bounce_good_ ? 100.0 : 280.0));
  }
  EXPECT_GT(good_picks, calls * 7 / 10);
}

TEST_F(ViaPolicyTest, TopKExcludesClearlyWorseOptions) {
  ViaConfig config;
  config.epsilon = 0.0;
  auto policy = make_policy(config);
  feed_history(*policy, 10);
  policy->refresh(kSecondsPerDay);
  const auto top = policy->top_k_for(ctx());
  ASSERT_FALSE(top.empty());
  for (const auto& r : top) {
    EXPECT_NE(r.option, RelayOptionTable::direct_id()) << "300ms direct should be pruned";
  }
}

TEST_F(ViaPolicyTest, EpsilonExplorationHitsNonTopkArms) {
  ViaConfig config;
  config.epsilon = 0.5;  // exaggerate for the test
  config.seed = 3;
  auto policy = make_policy(config);
  feed_history(*policy);
  policy->refresh(kSecondsPerDay);

  int direct_or_bad = 0;
  for (int i = 0; i < 400; ++i) {
    const OptionId pick = policy->choose(ctx(static_cast<CallId>(i)));
    if (pick != bounce_good_) ++direct_or_bad;
    policy->observe(obs(pick, 100.0));
  }
  // With eps=0.5 and 3 candidates, ~1/3 of exploration calls leave the
  // best arm.
  EXPECT_GT(direct_or_bad, 60);
  EXPECT_GT(policy->stats().epsilon_explored, 100);
}

TEST_F(ViaPolicyTest, RefreshInvalidatesPairStates) {
  ViaConfig config;
  config.epsilon = 0.0;
  auto policy = make_policy(config);
  feed_history(*policy);
  policy->refresh(kSecondsPerDay);
  EXPECT_FALSE(policy->top_k_for(ctx()).empty());
  // Next refresh trains on an empty window: predictions vanish.
  policy->refresh(2 * kSecondsPerDay);
  EXPECT_TRUE(policy->top_k_for(ctx()).empty());
  EXPECT_EQ(policy->choose(ctx()), RelayOptionTable::direct_id());
}

TEST_F(ViaPolicyTest, BudgetDeniesLowBenefitRelays) {
  ViaConfig config;
  config.epsilon = 0.0;
  config.budget = {.fraction = 0.05, .aware = true};
  auto policy = make_policy(config);
  // Benefit here is large (300 vs 100), but the budget token bucket still
  // limits the relayed fraction to ~5%.
  feed_history(*policy);
  policy->refresh(kSecondsPerDay);
  int relayed = 0;
  const int calls = 2000;
  for (int i = 0; i < calls; ++i) {
    const OptionId pick = policy->choose(ctx(static_cast<CallId>(i)));
    if (pick != RelayOptionTable::direct_id()) ++relayed;
    policy->observe(obs(pick, 150.0));
  }
  EXPECT_LE(relayed, calls / 10);
  EXPECT_GT(policy->stats().budget_denied, calls / 2);
}

TEST_F(ViaPolicyTest, StatsChoiceMixAccounted) {
  ViaConfig config;
  config.epsilon = 0.0;
  auto policy = make_policy(config);
  feed_history(*policy);
  policy->refresh(kSecondsPerDay);
  for (int i = 0; i < 50; ++i) {
    policy->observe(obs(policy->choose(ctx(static_cast<CallId>(i))), 100.0));
  }
  const auto& s = policy->stats();
  EXPECT_EQ(s.calls, 50);
  EXPECT_EQ(s.chose_direct + s.chose_bounce + s.chose_transit, 50);
}

TEST_F(ViaPolicyTest, AblationFixedTopKIsSmaller) {
  ViaConfig dynamic_config;
  dynamic_config.epsilon = 0.0;
  ViaConfig fixed_config = dynamic_config;
  fixed_config.topk = {.dynamic = false, .fixed_k = 1};

  auto dynamic_policy = make_policy(dynamic_config);
  auto fixed_policy = make_policy(fixed_config);
  for (auto* p : {dynamic_policy.get(), fixed_policy.get()}) {
    // Noisy history so the dynamic rule keeps several candidates.
    for (int i = 0; i < 8; ++i) {
      p->observe(obs(RelayOptionTable::direct_id(), 160.0 + 40.0 * (i % 3)));
      p->observe(obs(bounce_good_, 150.0 + 45.0 * ((i + 1) % 3)));
      p->observe(obs(bounce_bad_, 170.0 + 40.0 * ((i + 2) % 3)));
    }
    p->refresh(kSecondsPerDay);
  }
  EXPECT_EQ(fixed_policy->top_k_for(ctx()).size(), 1u);
  EXPECT_GT(dynamic_policy->top_k_for(ctx()).size(), 1u);
}

TEST_F(ViaPolicyTest, NameAndConfigExposed) {
  auto policy = make_policy();
  EXPECT_EQ(policy->name(), "via");
  EXPECT_EQ(policy->config().refresh_period, 24 * 3600);
}

}  // namespace
}  // namespace via
