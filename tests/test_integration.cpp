// End-to-end integration tests: the whole pipeline (world -> trace ->
// policies -> engine -> analysis) reproduces the paper's headline shapes.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/section2.h"
#include "obs/trace.h"
#include "sim/experiment.h"

namespace via {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static Experiment& exp() {
    static Experiment instance([] {
      auto setup = Experiment::default_setup(Experiment::Scale::Small);
      setup.trace.total_calls = 60'000;
      setup.trace.days = 14;
      return setup;
    }());
    return instance;
  }
};

TEST_F(IntegrationTest, ViaCutsPnrMeaningfully) {
  for (const Metric m : {Metric::Rtt, Metric::Loss}) {
    auto def = exp().make_default();
    auto via_policy = exp().make_via(m);
    const RunResult base = exp().run(*def);
    const RunResult mine = exp().run(*via_policy);
    const double reduction = relative_improvement_pct(base.pnr.pnr(m), mine.pnr.pnr(m));
    // The paper reports 39-45% per-metric PNR reduction; accept anything
    // clearly positive at this small scale.
    EXPECT_GT(reduction, 15.0) << metric_name(m);
  }
}

TEST_F(IntegrationTest, ViaApproachesOracle) {
  auto def = exp().make_default();
  auto via_policy = exp().make_via(Metric::Rtt);
  auto oracle = exp().make_oracle(Metric::Rtt);
  const RunResult base = exp().run(*def);
  const RunResult mine = exp().run(*via_policy);
  const RunResult best = exp().run(*oracle);
  const double via_cut = base.pnr.pnr(Metric::Rtt) - mine.pnr.pnr(Metric::Rtt);
  const double oracle_cut = base.pnr.pnr(Metric::Rtt) - best.pnr.pnr(Metric::Rtt);
  EXPECT_GT(via_cut, 0.35 * oracle_cut);
}

TEST_F(IntegrationTest, ViaBeatsBothStrawmen) {
  auto via_policy = exp().make_via(Metric::Rtt);
  auto s1 = exp().make_prediction_only(Metric::Rtt);
  auto s2 = exp().make_exploration_only(Metric::Rtt);
  const RunResult mine = exp().run(*via_policy);
  const RunResult pred = exp().run(*s1);
  const RunResult expl = exp().run(*s2);
  EXPECT_LE(mine.pnr.pnr(Metric::Rtt), pred.pnr.pnr(Metric::Rtt) * 1.05);
  EXPECT_LE(mine.pnr.pnr(Metric::Rtt), expl.pnr.pnr(Metric::Rtt) * 1.05);
}

TEST_F(IntegrationTest, PercentileImprovementsPositiveInTheTail) {
  auto def = exp().make_default();
  auto via_policy = exp().make_via(Metric::Rtt);
  const RunResult base = exp().run(*def);
  const RunResult mine = exp().run(*via_policy);
  const auto cmp = compare_percentiles(base, mine, Metric::Rtt, {50.0, 75.0, 90.0, 99.0});
  // Tail percentiles (where poor calls live) must clearly improve; the
  // median must not get materially worse (our unfiltered mix contains many
  // calls whose direct path is already good — the paper evaluates on the
  // data-dense filtered subset where even the median improves).
  EXPECT_GT(cmp.improvement_pct[2], 5.0);   // p90
  EXPECT_GT(cmp.improvement_pct[3], 5.0);   // p99
  EXPECT_GT(cmp.improvement_pct[0], -6.0);  // p50 not materially worse
}

TEST_F(IntegrationTest, TransitAvailabilityHelps) {
  auto with_transit = exp().make_via(Metric::Rtt);
  auto without_transit = exp().make_via(Metric::Rtt);
  RunConfig no_transit;
  no_transit.exclude_transit = true;
  const RunResult full = exp().run(*with_transit);
  const RunResult bounce_only = exp().run(*without_transit, no_transit);
  // Transit access should not hurt, and usually helps (paper §5.2).
  EXPECT_LE(full.pnr.pnr(Metric::Rtt), bounce_only.pnr.pnr(Metric::Rtt) * 1.1);
}

TEST_F(IntegrationTest, InternationalCallsImproveMore) {
  auto def = exp().make_default();
  auto via_policy = exp().make_via(Metric::Rtt);
  const RunResult base = exp().run(*def);
  const RunResult mine = exp().run(*via_policy);
  const double intl_cut = relative_improvement_pct(base.pnr_international.pnr_any(),
                                                   mine.pnr_international.pnr_any());
  const double dom_cut = relative_improvement_pct(base.pnr_domestic.pnr_any(),
                                                  mine.pnr_domestic.pnr_any());
  EXPECT_GT(intl_cut, 0.0);
  EXPECT_GT(dom_cut, -10.0);  // domestic must not get substantially worse
}

TEST_F(IntegrationTest, TomographyAblationMattersForCoverage) {
  ViaConfig no_tomo;
  no_tomo.predictor.use_tomography = false;
  auto with_tomo = exp().make_via(Metric::Rtt);
  auto without_tomo = exp().make_via(Metric::Rtt, no_tomo);
  const RunResult a = exp().run(*with_tomo);
  const RunResult b = exp().run(*without_tomo);
  // Tomography should not hurt; typically it helps by widening coverage.
  EXPECT_LE(a.pnr.pnr(Metric::Rtt), b.pnr.pnr(Metric::Rtt) * 1.1);
}

TEST_F(IntegrationTest, TelemetryAccountsForEveryRoutedCall) {
  auto via_policy = exp().make_via(Metric::Rtt);
  const RunResult r = exp().run(*via_policy);

  // Every policy-routed call must carry exactly one decision reason; the
  // background-relay counter covers the rest of the arrivals.
  const std::int64_t policy_calls = r.telemetry.counter_value("engine.calls");
  EXPECT_EQ(policy_calls, r.calls);
  const std::int64_t reason_sum =
      r.telemetry.counter_value("policy.decision.ucb") +
      r.telemetry.counter_value("policy.decision.epsilon_explore") +
      r.telemetry.counter_value("policy.decision.budget_veto") +
      r.telemetry.counter_value("policy.decision.fallback_direct");
  EXPECT_EQ(reason_sum, policy_calls);
  EXPECT_GT(r.telemetry.counter_value("engine.decision.background_relay"), 0);

  // ε general exploration runs at the configured rate (ε = 0.03 by default;
  // with the default unlimited budget no ε pick is vetoed, so the share is
  // Binomial(calls, ε)/calls — far tighter than ±0.01 at this call count).
  const double eps_share =
      static_cast<double>(r.telemetry.counter_value("policy.decision.epsilon_explore")) /
      static_cast<double>(policy_calls);
  EXPECT_NEAR(eps_share, 0.03, 0.01);

  // The decision trace is live, bounded, and every event round-trips JSONL.
  EXPECT_GT(r.decisions.size(), 0u);
  EXPECT_LE(r.decisions.size(), static_cast<std::size_t>(4096));
  std::int64_t observed_filled = 0;
  for (const obs::DecisionEvent& e : r.decisions) {
    const auto back = obs::DecisionEvent::from_jsonl(e.to_jsonl());
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->call_id, e.call_id);
    EXPECT_EQ(back->reason, e.reason);
    if (!std::isnan(e.observed)) ++observed_filled;
  }
  // The engine reports every completed call back, so resident events have
  // their observed metric filled in.
  EXPECT_GT(observed_filled, 0);

  // Refresh-side instruments: the predictor refreshed and fit segments.
  EXPECT_GT(r.telemetry.counter_value("policy.refresh.count"), 0);
  EXPECT_GT(r.telemetry.gauge_value("policy.refresh.tomography_segments"), 0.0);
  const obs::HistogramSample* choose_ns = r.telemetry.find_histogram("engine.choose_ns");
  ASSERT_NE(choose_ns, nullptr);
  EXPECT_EQ(choose_ns->count, policy_calls);
}

TEST_F(IntegrationTest, TelemetryCanBeDisabled) {
  auto via_policy = exp().make_via(Metric::Rtt);
  RunConfig config;
  config.enable_telemetry = false;
  const RunResult r = exp().run(*via_policy, config);
  EXPECT_GT(r.calls, 0);
  EXPECT_EQ(r.telemetry.counter_value("engine.calls"), 0);
  EXPECT_TRUE(r.decisions.empty());
}

TEST_F(IntegrationTest, RatingDataReproducesFigureOneShape) {
  // Default-routed records with ratings: PCR must rise with each metric.
  auto records = exp().generator().generate_default_routed();
  const auto rtt_curve = binned_pcr(records, Metric::Rtt, 0, 800, 16, 50);
  EXPECT_GT(rtt_curve.correlation, 0.6);
  ASSERT_GE(rtt_curve.bins.size(), 4u);
  EXPECT_GT(rtt_curve.bins.back().pcr, rtt_curve.bins.front().pcr);
}

}  // namespace
}  // namespace via
