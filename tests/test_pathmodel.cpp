#include "netsim/pathmodel.h"

#include <gtest/gtest.h>

#include "util/geo.h"

namespace via {
namespace {

class PathModelTest : public ::testing::Test {
 protected:
  World world_{{.num_ases = 60, .num_relays = 12, .seed = 11}};
  PathModel model_{world_};
};

TEST_F(PathModelTest, DirectSymmetric) {
  const PathPerformance ab = model_.direct_base(3, 9);
  const PathPerformance ba = model_.direct_base(9, 3);
  for (const Metric m : kAllMetrics) EXPECT_DOUBLE_EQ(ab.get(m), ba.get(m));
}

TEST_F(PathModelTest, DirectIncludesBothLastMiles) {
  const PathPerformance p = model_.direct_base(0, 1);
  EXPECT_GE(p.rtt_ms, world_.as_node(0).lastmile_rtt_ms + world_.as_node(1).lastmile_rtt_ms);
  EXPECT_GE(p.loss_pct,
            world_.as_node(0).lastmile_loss_pct + world_.as_node(1).lastmile_loss_pct);
}

TEST_F(PathModelTest, SegmentIncludesOnlyClientLastMile) {
  const PathPerformance p = model_.segment_base(0, 0);
  EXPECT_GE(p.rtt_ms, world_.as_node(0).lastmile_rtt_ms);
  const double km = haversine_km(world_.as_node(0).pos, world_.relay(0).pos);
  // RTT is bounded below by pure propagation at minimum circuitousness.
  EXPECT_GE(p.rtt_ms, 2.0 * fiber_delay_ms(km) * 1.0);
}

TEST_F(PathModelTest, DeterministicDraws) {
  const PathPerformance a = model_.direct_base(5, 17);
  const PathPerformance b = model_.direct_base(5, 17);
  EXPECT_EQ(a, b);
}

TEST_F(PathModelTest, BackboneFasterThanPublicSegments) {
  // Backbone circuitousness (1.05) is below the public minimum (1.1), and
  // it carries no last-mile cost: for the same relay pair distance the
  // backbone must be faster than any public path of that length.
  const PathPerformance bb = model_.backbone(0, 5);
  const double km = haversine_km(world_.relay(0).pos, world_.relay(5).pos);
  EXPECT_LT(bb.rtt_ms, 2.0 * fiber_delay_ms(km) * 1.1 + 4.0 + 1.0);
  EXPECT_LT(bb.loss_pct, 0.05);
  EXPECT_LT(bb.jitter_ms, 1.0);
}

TEST_F(PathModelTest, BackboneSameRelayIsFree) {
  const PathPerformance bb = model_.backbone(3, 3);
  EXPECT_EQ(bb.rtt_ms, 0.0);
  EXPECT_EQ(bb.loss_pct, 0.0);
}

TEST_F(PathModelTest, BackboneSymmetric) {
  const PathPerformance ab = model_.backbone(2, 7);
  const PathPerformance ba = model_.backbone(7, 2);
  EXPECT_DOUBLE_EQ(ab.rtt_ms, ba.rtt_ms);
}

TEST_F(PathModelTest, RttGrowsWithDistance) {
  // Find a nearby pair and a far pair relative to AS 0, same quality aside.
  double near_km = 1e18, far_km = 0;
  AsId near_as = 1, far_as = 1;
  for (AsId a = 1; a < world_.num_ases(); ++a) {
    const double km = haversine_km(world_.as_node(0).pos, world_.as_node(a).pos);
    if (km < near_km) {
      near_km = km;
      near_as = a;
    }
    if (km > far_km) {
      far_km = km;
      far_as = a;
    }
  }
  ASSERT_GT(far_km, near_km + 2000.0);
  EXPECT_GT(model_.direct_base(0, far_as).rtt_ms, model_.direct_base(0, near_as).rtt_ms);
}

TEST_F(PathModelTest, CongestionExposureInRange) {
  for (AsId a = 0; a < 10; ++a) {
    for (AsId b = 0; b < 10; ++b) {
      if (a == b) continue;
      const double e = model_.direct_congestion_exposure(a, b);
      EXPECT_GE(e, 0.25);
      EXPECT_LE(e, 1.0);
    }
    const double e = model_.segment_congestion_exposure(a, 0);
    EXPECT_GE(e, 0.25);
    EXPECT_LE(e, 1.0);
  }
}

TEST_F(PathModelTest, LinkKeysStableAndSymmetric) {
  EXPECT_EQ(model_.direct_link_key(3, 9), model_.direct_link_key(9, 3));
  EXPECT_NE(model_.direct_link_key(3, 9), model_.direct_link_key(3, 10));
  EXPECT_NE(model_.segment_link_key(3, 1), model_.segment_link_key(3, 2));
  EXPECT_NE(model_.segment_link_key(3, 1), model_.direct_link_key(3, 1));
}

TEST_F(PathModelTest, SeedChangesPaths) {
  const World other({.num_ases = 60, .num_relays = 12, .seed = 12});
  const PathModel other_model(other);
  int diff = 0;
  for (AsId a = 0; a < 20; ++a) {
    if (model_.direct_base(a, (a + 1) % 60).rtt_ms !=
        other_model.direct_base(a, (a + 1) % 60).rtt_ms) {
      ++diff;
    }
  }
  EXPECT_GT(diff, 15);
}

// Property: all base performances are positive and finite everywhere.
class PathModelSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PathModelSweep, AllPathsFiniteAndPositive) {
  const World world({.num_ases = 30, .num_relays = 8, .seed = GetParam()});
  const PathModel model(world);
  for (AsId a = 0; a < world.num_ases(); a += 3) {
    for (AsId b = a + 1; b < world.num_ases(); b += 5) {
      const PathPerformance p = model.direct_base(a, b);
      EXPECT_GT(p.rtt_ms, 0.0);
      EXPECT_GE(p.loss_pct, 0.0);
      EXPECT_GT(p.jitter_ms, 0.0);
      EXPECT_LT(p.rtt_ms, 2000.0);
    }
    for (RelayId r = 0; r < world.num_relays(); ++r) {
      const PathPerformance p = model.segment_base(a, r);
      EXPECT_GT(p.rtt_ms, 0.0);
      EXPECT_LT(p.rtt_ms, 1500.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PathModelSweep, ::testing::Values(1, 2, 3, 42, 99));

}  // namespace
}  // namespace via
