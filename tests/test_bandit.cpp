#include "core/bandit.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace via {
namespace {

std::vector<RankedOption> make_arms(std::initializer_list<std::pair<OptionId, double>> arms) {
  std::vector<RankedOption> out;
  for (const auto& [opt, upper] : arms) {
    RankedOption r;
    r.option = opt;
    r.pred.valid = true;
    r.pred.mean = upper * 0.9;
    r.pred.upper = upper;
    r.pred.lower = upper * 0.8;
    out.push_back(r);
  }
  return out;
}

BanditConfig no_seed() {
  BanditConfig config;
  config.seed_with_prediction = false;
  return config;
}

TEST(UcbBandit, NoArmsReturnsInvalid) {
  UcbBandit b;
  EXPECT_FALSE(b.has_arms());
  EXPECT_EQ(b.pick(), kInvalidOption);
}

TEST(UcbBandit, UnplayedArmsTriedFirst) {
  UcbBandit b;
  b.set_arms(make_arms({{1, 100.0}, {2, 100.0}, {3, 100.0}}), no_seed());
  // First three picks must cover all three arms.
  std::set<OptionId> seen;
  for (int i = 0; i < 3; ++i) {
    const OptionId pick = b.pick();
    seen.insert(pick);
    b.observe(pick, 100.0);
  }
  EXPECT_EQ(seen.size(), 3u);
}

TEST(UcbBandit, NormalizerIsMeanOfUpperBounds) {
  UcbBandit b;
  b.set_arms(make_arms({{1, 100.0}, {2, 200.0}, {3, 300.0}}), {});
  EXPECT_DOUBLE_EQ(b.normalizer(), 200.0);
}

TEST(UcbBandit, ConvergesToBestArm) {
  UcbBandit b;
  b.set_arms(make_arms({{1, 150.0}, {2, 150.0}, {3, 150.0}}), no_seed());
  Rng rng(3);
  // True costs: arm 1 = 100, arm 2 = 140, arm 3 = 180 (noisy).
  auto cost_of = [&](OptionId opt) {
    const double base = opt == 1 ? 100.0 : (opt == 2 ? 140.0 : 180.0);
    return base * rng.lognormal_mean_cv(1.0, 0.1);
  };
  int best_picks = 0;
  const int rounds = 500;
  for (int i = 0; i < rounds; ++i) {
    const OptionId pick = b.pick();
    if (pick == 1) ++best_picks;
    b.observe(pick, cost_of(pick));
  }
  EXPECT_GT(best_picks, rounds * 7 / 10);
  EXPECT_EQ(b.total_plays(), rounds);
}

TEST(UcbBandit, KeepsExploringOccasionally) {
  UcbBandit b;
  b.set_arms(make_arms({{1, 150.0}, {2, 150.0}}), {});
  // Arm 1 is clearly better, but UCB's log(T) bonus must still revisit 2.
  int second_picks = 0;
  for (int i = 0; i < 2000; ++i) {
    const OptionId pick = b.pick();
    if (pick == 2) ++second_picks;
    b.observe(pick, pick == 1 ? 100.0 : 140.0);
  }
  EXPECT_GT(second_picks, 5);
  EXPECT_LT(second_picks, 1000);
}

TEST(UcbBandit, ObserveUnknownArmIsNoOp) {
  UcbBandit b;
  b.set_arms(make_arms({{1, 100.0}}), no_seed());
  b.observe(99, 50.0);
  EXPECT_EQ(b.total_plays(), 0);
}

TEST(UcbBandit, SetArmsResetsState) {
  UcbBandit b;
  b.set_arms(make_arms({{1, 100.0}}), no_seed());
  b.observe(1, 100.0);
  EXPECT_EQ(b.total_plays(), 1);
  b.set_arms(make_arms({{2, 100.0}}), no_seed());
  EXPECT_EQ(b.total_plays(), 0);
  EXPECT_EQ(b.pick(), 2);
}

TEST(UcbBandit, PredictionSeedingRanksArmsWithoutPlays) {
  UcbBandit b;
  // Seeded with pred.mean = 0.9 * upper: arm 1 starts best.
  b.set_arms(make_arms({{2, 200.0}, {1, 100.0}, {3, 300.0}}), {});
  EXPECT_EQ(b.total_plays(), 3);  // one pseudo-observation per arm
  EXPECT_EQ(b.pick(), 1);
}

TEST(UcbBandit, CarryOverKeepsSurvivingArmStats) {
  UcbBandit b;
  b.set_arms(make_arms({{1, 100.0}, {2, 100.0}}), no_seed());
  for (int i = 0; i < 10; ++i) b.observe(1, 50.0);
  for (int i = 0; i < 10; ++i) b.observe(2, 90.0);

  UcbBandit next;
  BanditConfig config = no_seed();
  config.carry_over = 0.5;
  next.set_arms(make_arms({{1, 100.0}, {3, 100.0}}), config, &b);
  // Arm 1 carried 5 decayed plays; arm 3 is fresh and gets tried first.
  EXPECT_EQ(next.total_plays(), 5);
  EXPECT_EQ(next.pick(), 3);
  next.observe(3, 95.0);
  // With arm 3 looking worse, the carried knowledge favours arm 1.
  EXPECT_EQ(next.pick(), 1);
}

TEST(UcbBandit, FullResetWhenCarryZero) {
  UcbBandit b;
  b.set_arms(make_arms({{1, 100.0}}), no_seed());
  b.observe(1, 50.0);
  UcbBandit next;
  BanditConfig config = no_seed();
  config.carry_over = 0.0;
  next.set_arms(make_arms({{1, 100.0}}), config, &b);
  EXPECT_EQ(next.total_plays(), 0);
}

TEST(UcbBandit, PaperNormalizationDiscriminatesUnderOutliers) {
  // The paper's critique of naive normalization (Section 4.5): dividing by
  // the full value range (here: the max observed, inflated by rare
  // outliers) squashes common-case differences below the exploration
  // bonus, so the bandit dithers.  Normalizing by the mean top-k upper
  // bound keeps the 100-vs-140 distinction visible.
  const BanditConfig paper{.normalization = BanditNormalization::MeanUpperBound};
  const BanditConfig naive{.normalization = BanditNormalization::MaxObserved};

  auto run = [&](const BanditConfig& config) {
    UcbBandit b;
    b.set_arms(make_arms({{1, 150.0}, {2, 150.0}}), config);
    Rng rng(11);
    int best = 0;
    for (int i = 0; i < 600; ++i) {
      const OptionId pick = b.pick();
      double cost = pick == 1 ? 100.0 : 140.0;
      // Rare huge spikes on the worse arm: they inflate the max-observed
      // normalizer, shrinking all index differences below the exploration
      // bonus.
      if (pick == 2 && rng.bernoulli(0.03)) cost *= 25.0;
      if (pick == 1) ++best;
      b.observe(pick, cost);
    }
    return best;
  };

  const int paper_best = run(paper);
  const int naive_best = run(naive);
  EXPECT_GT(paper_best, naive_best);
  EXPECT_GT(paper_best, 450);  // clear majority on the better arm
}

// Property sweep: convergence rate improves with the cost gap.
class BanditGap : public ::testing::TestWithParam<double> {};

TEST_P(BanditGap, LargerGapsEasierToExploit) {
  const double gap = GetParam();
  UcbBandit b;
  b.set_arms(make_arms({{1, 150.0}, {2, 150.0}}), {});
  Rng rng(hash_mix(static_cast<std::uint64_t>(gap * 10), 7));
  int best = 0;
  const int rounds = 600;
  for (int i = 0; i < rounds; ++i) {
    const OptionId pick = b.pick();
    const double base = pick == 1 ? 100.0 : 100.0 + gap;
    if (pick == 1) ++best;
    b.observe(pick, base * rng.lognormal_mean_cv(1.0, 0.15));
  }
  // Even the smallest gap should favour arm 1; big gaps should dominate.
  EXPECT_GT(best, rounds / 2);
  if (gap >= 40.0) {
    EXPECT_GT(best, rounds * 8 / 10);
  }
}

INSTANTIATE_TEST_SUITE_P(Gaps, BanditGap, ::testing::Values(10.0, 20.0, 40.0, 80.0));

}  // namespace
}  // namespace via
