// Parallel experiment runner: determinism against serial execution, thread
// pool behavior, and concurrent GroundTruth access.
#include "sim/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "netsim/groundtruth.h"
#include "netsim/world.h"
#include "sim/experiment.h"
#include "util/flat_map.h"
#include "util/thread_pool.h"

namespace via {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4);
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPool, WaitIdleWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();
  pool.submit([] {});
  pool.wait_idle();
}

TEST(ThreadPool, DefaultThreadsIsPositive) { EXPECT_GE(ThreadPool::default_threads(), 1); }

TEST(FlatMap, InsertFindClearRoundTrip) {
  FlatMap<int> map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.find(42), nullptr);
  for (std::uint64_t k = 0; k < 1000; ++k) map[k * 7919] = static_cast<int>(k);
  EXPECT_EQ(map.size(), 1000U);
  for (std::uint64_t k = 0; k < 1000; ++k) {
    const int* v = map.find(k * 7919);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(*v, static_cast<int>(k));
  }
  EXPECT_EQ(map.find(7919 * 1000), nullptr);
  map.clear();
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.find(0), nullptr);
  // Reinserted keys start from a default-constructed value.
  EXPECT_EQ(map[7919], 0);
}

TEST(FlatMap, IterationIsDeterministicForIdenticalInsertionSequences) {
  FlatMap<std::uint64_t> a;
  FlatMap<std::uint64_t> b;
  for (std::uint64_t k = 1; k <= 300; ++k) {
    a[k * k] = k;
    b[k * k] = k;
  }
  std::vector<std::uint64_t> order_a;
  std::vector<std::uint64_t> order_b;
  a.for_each([&](std::uint64_t key, const std::uint64_t&) { order_a.push_back(key); });
  b.for_each([&](std::uint64_t key, const std::uint64_t&) { order_b.push_back(key); });
  EXPECT_EQ(order_a, order_b);
}

// ------------------------------------------------------ determinism suite

/// Counter samples must match exactly; gauges/histograms are excluded
/// because engine.run_seconds and engine.choose_ns measure wall-clock.
void expect_same_counters(const RunResult& a, const RunResult& b) {
  ASSERT_EQ(a.telemetry.counters.size(), b.telemetry.counters.size());
  for (std::size_t i = 0; i < a.telemetry.counters.size(); ++i) {
    EXPECT_EQ(a.telemetry.counters[i].name, b.telemetry.counters[i].name);
    EXPECT_EQ(a.telemetry.counters[i].value, b.telemetry.counters[i].value)
        << "counter " << a.telemetry.counters[i].name;
  }
}

void expect_identical_runs(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.policy_name, b.policy_name);
  EXPECT_EQ(a.calls, b.calls);
  EXPECT_EQ(a.evaluated_calls, b.evaluated_calls);
  EXPECT_EQ(a.used_direct, b.used_direct);
  EXPECT_EQ(a.used_bounce, b.used_bounce);
  EXPECT_EQ(a.used_transit, b.used_transit);
  EXPECT_EQ(a.probes_executed, b.probes_executed);
  // PNR and the raw per-call value streams must be bit-identical, not just
  // close: parallel replays share nothing mutable with each other.
  EXPECT_EQ(a.pnr.total(), b.pnr.total());
  for (const Metric m : kAllMetrics) {
    EXPECT_EQ(a.pnr.pnr(m), b.pnr.pnr(m));
    EXPECT_EQ(a.values[metric_index(m)], b.values[metric_index(m)]);
  }
  EXPECT_EQ(a.pnr_international.pnr_any(), b.pnr_international.pnr_any());
  EXPECT_EQ(a.pnr_domestic.pnr_any(), b.pnr_domestic.pnr_any());
  expect_same_counters(a, b);
}

std::vector<RunSpec> make_specs(Experiment& exp) {
  std::vector<RunSpec> specs;
  specs.push_back({"default", [&exp] { return exp.make_default(); }, {}});
  specs.push_back({"via-rtt", [&exp] { return exp.make_via(Metric::Rtt); }, {}});
  specs.push_back({"via-loss", [&exp] { return exp.make_via(Metric::Loss); }, {}});
  specs.push_back(
      {"prediction-only", [&exp] { return exp.make_prediction_only(Metric::Rtt); }, {}});
  BudgetConfig budget;
  budget.fraction = 0.3;
  specs.push_back({"oracle-budget",
                   [&exp, budget] { return exp.make_oracle(Metric::Rtt, budget); },
                   {}});
  return specs;
}

TEST(RunMany, BitIdenticalToSerialAcrossThreadCounts) {
  // Two independent experiments with the same setup: one replays serially
  // through Experiment::run (lazy cache fill), one through run_many.
  const auto setup = Experiment::default_setup(Experiment::Scale::Small);
  Experiment serial_exp(setup);
  Experiment parallel_exp(setup);

  const std::vector<RunSpec> serial_specs = make_specs(serial_exp);
  std::vector<RunResult> serial;
  serial.reserve(serial_specs.size());
  for (const RunSpec& spec : serial_specs) {
    auto policy = spec.make_policy();
    serial.push_back(serial_exp.run(*policy, spec.config));
  }

  const std::vector<RunSpec> parallel_specs = make_specs(parallel_exp);
  for (const int threads : {1, 2, 8}) {
    const std::vector<RunResult> parallel = parallel_exp.run_many(parallel_specs, threads);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      SCOPED_TRACE(serial_specs[i].label + " @" + std::to_string(threads) + " threads");
      expect_identical_runs(serial[i], parallel[i]);
    }
  }

  // Interning order must agree too: warm() replays the same first-touch
  // order the serial run used.
  const RelayOptionTable& st = serial_exp.ground_truth().option_table();
  const RelayOptionTable& pt = parallel_exp.ground_truth().option_table();
  ASSERT_EQ(st.size(), pt.size());
  for (std::size_t i = 0; i < st.size(); ++i) {
    EXPECT_EQ(st.label(static_cast<OptionId>(i)), pt.label(static_cast<OptionId>(i)));
  }
}

TEST(RunMany, RepeatedInvocationIsStable) {
  Experiment exp(Experiment::default_setup(Experiment::Scale::Small));
  const std::vector<RunSpec> specs = make_specs(exp);
  const std::vector<RunResult> first = exp.run_many(specs, 2);
  const std::vector<RunResult> second = exp.run_many(specs, 4);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    SCOPED_TRACE(specs[i].label);
    expect_identical_runs(first[i], second[i]);
  }
}

TEST(RunMany, PropagatesRunExceptions) {
  Experiment exp(Experiment::default_setup(Experiment::Scale::Small));
  std::vector<RunSpec> specs;
  specs.push_back({"boom",
                   []() -> std::unique_ptr<RoutingPolicy> {
                     throw std::runtime_error("factory failed");
                   },
                   {}});
  EXPECT_THROW((void)exp.run_many(specs, 2), std::runtime_error);
}

// -------------------------------------------- concurrent GroundTruth reads

TEST(GroundTruthConcurrency, UnwarmedConcurrentReadersAgreeWithSerial) {
  WorldConfig wc;
  wc.num_ases = 24;
  wc.num_relays = 8;
  World world(wc);
  GroundTruth shared(world);
  GroundTruth reference(world);

  // 8 threads hammer overlapping pairs through every cached query path.
  constexpr int kThreads = 8;
  constexpr int kDays = 6;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  std::atomic<bool> failed{false};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&shared, t, &failed] {
      for (int rep = 0; rep < 3; ++rep) {
        for (AsId s = 0; s < 24; ++s) {
          const AsId d = static_cast<AsId>((s + 1 + t) % 24);
          if (s == d) continue;
          const auto opts = shared.candidate_options(s, d);
          if (opts.empty() || opts[0] != RelayOptionTable::direct_id()) {
            failed.store(true);
            return;
          }
          (void)shared.nearest_relays(s);
          for (int day = 0; day < kDays; ++day) {
            for (const OptionId opt : opts) {
              (void)shared.day_mean(s, d, opt, day);
            }
          }
          (void)shared.sample_call(1000 + s, s, d, opts[0], 3600);
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  ASSERT_FALSE(failed.load());

  // The direct option has id 0 in every table, so its day means are
  // comparable across instances regardless of interning order — and must
  // be bitwise equal to an untouched serial instance.
  for (AsId s = 0; s < 24; ++s) {
    for (int t = 0; t < kThreads; ++t) {
      const AsId d = static_cast<AsId>((s + 1 + t) % 24);
      if (s == d) continue;
      for (int day = 0; day < kDays; ++day) {
        const PathPerformance a = shared.day_mean(s, d, 0, day);
        const PathPerformance b = reference.day_mean(s, d, 0, day);
        ASSERT_EQ(a.rtt_ms, b.rtt_ms);
        ASSERT_EQ(a.loss_pct, b.loss_pct);
        ASSERT_EQ(a.jitter_ms, b.jitter_ms);
      }
    }
  }

  // Repeated queries on the shared instance are self-consistent (cache
  // hits return what the first compute produced).
  const auto opts = shared.candidate_options(0, 1);
  for (const OptionId opt : opts) {
    const PathPerformance first = shared.day_mean(0, 1, opt, 0);
    const PathPerformance again = shared.day_mean(0, 1, opt, 0);
    EXPECT_EQ(first.rtt_ms, again.rtt_ms);
  }
}

// ------------------------------------------------------- engine satellites

TEST(EngineOptions, ExcludeTransitWithoutTransitCandidatesMatchesUnfiltered) {
  auto setup = Experiment::default_setup(Experiment::Scale::Small);
  setup.ground_truth.transit_candidates_per_side = 0;  // no transit exists
  setup.trace.total_calls = 4000;
  Experiment exp(setup);

  RunConfig with_filter;
  with_filter.exclude_transit = true;
  RunConfig without_filter;

  auto p1 = exp.make_via(Metric::Rtt);
  auto p2 = exp.make_via(Metric::Rtt);
  const RunResult filtered = exp.run(*p1, with_filter);
  const RunResult unfiltered = exp.run(*p2, without_filter);

  // With no transit options the filter has nothing to remove: identical
  // candidate sets, identical replay.
  EXPECT_EQ(filtered.used_transit, 0);
  EXPECT_EQ(unfiltered.used_transit, 0);
  EXPECT_EQ(filtered.pnr.pnr_any(), unfiltered.pnr.pnr_any());
  for (const Metric m : kAllMetrics) {
    EXPECT_EQ(filtered.values[metric_index(m)], unfiltered.values[metric_index(m)]);
  }
}

TEST(DecisionTraceGating, DisabledRingKeepsCountersDropsEvents) {
  auto setup = Experiment::default_setup(Experiment::Scale::Small);
  setup.trace.total_calls = 4000;
  Experiment exp(setup);

  RunConfig with_ring;
  with_ring.decision_trace_capacity = 4096;
  RunConfig no_ring;
  no_ring.decision_trace_capacity = 0;

  auto p1 = exp.make_via(Metric::Rtt);
  auto p2 = exp.make_via(Metric::Rtt);
  const RunResult ringed = exp.run(*p1, with_ring);
  const RunResult ringless = exp.run(*p2, no_ring);

  EXPECT_GT(ringed.decisions.size(), 0U);
  EXPECT_EQ(ringless.decisions.size(), 0U);
  // Disabling the ring must not change routing or the reason tallies.
  EXPECT_EQ(ringed.pnr.pnr_any(), ringless.pnr.pnr_any());
  expect_same_counters(ringed, ringless);
}

}  // namespace
}  // namespace via
