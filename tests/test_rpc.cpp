#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/policies.h"
#include "core/via_policy.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "rpc/client.h"
#include "rpc/framing.h"
#include "rpc/messages.h"
#include "rpc/server.h"
#include "rpc/socket.h"

namespace via {
namespace {

// ------------------------------------------------------------ wire format

TEST(Wire, PrimitivesRoundTrip) {
  WireWriter w;
  w.u8(0xAB);
  w.u16(0x1234);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFULL);
  w.i32(-42);
  w.i64(-1'000'000'000'000LL);
  w.f64(3.14159);
  w.str("hello");

  WireReader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.i32(), -42);
  EXPECT_EQ(r.i64(), -1'000'000'000'000LL);
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_TRUE(r.exhausted());
}

TEST(Wire, UnderrunThrows) {
  WireWriter w;
  w.u16(7);
  WireReader r(w.bytes());
  EXPECT_THROW((void)r.u32(), std::runtime_error);
}

TEST(Wire, DecisionRequestRoundTrip) {
  DecisionRequest req;
  req.call_id = 42;
  req.time = 123456;
  req.src_as = 7;
  req.dst_as = 9;
  req.options = {0, 3, 5, 8};
  WireWriter w;
  req.encode(w);
  WireReader r(w.bytes());
  const DecisionRequest out = DecisionRequest::decode(r);
  EXPECT_EQ(out.call_id, 42);
  EXPECT_EQ(out.time, 123456);
  EXPECT_EQ(out.src_as, 7);
  EXPECT_EQ(out.dst_as, 9);
  EXPECT_EQ(out.options, req.options);
}

TEST(Wire, ReportRoundTrip) {
  ReportMsg msg;
  msg.obs.id = 5;
  msg.obs.time = 99;
  msg.obs.src_as = 1;
  msg.obs.dst_as = 2;
  msg.obs.option = 7;
  msg.obs.ingress = 3;
  msg.obs.perf = {123.5, 1.25, 8.75};
  WireWriter w;
  msg.encode(w);
  WireReader r(w.bytes());
  const ReportMsg out = ReportMsg::decode(r);
  EXPECT_EQ(out.obs.id, 5);
  EXPECT_EQ(out.obs.ingress, 3);
  EXPECT_DOUBLE_EQ(out.obs.perf.rtt_ms, 123.5);
  EXPECT_DOUBLE_EQ(out.obs.perf.loss_pct, 1.25);
}

// ------------------------------------------------------------- sockets

TEST(Sockets, ListenerPicksEphemeralPort) {
  TcpListener listener(0);
  EXPECT_GT(listener.port(), 0);
}

TEST(Sockets, FrameRoundTripOverLoopback) {
  TcpListener listener(0);
  std::thread server([&] {
    TcpConnection conn = listener.accept();
    Frame frame;
    ASSERT_TRUE(recv_frame(conn, frame));
    EXPECT_EQ(frame.type, 7);
    ASSERT_EQ(frame.payload.size(), 3u);
    send_frame(conn, 8, frame.payload);  // echo back
  });

  TcpConnection client = TcpConnection::connect_local(listener.port());
  const std::byte payload[3] = {std::byte{1}, std::byte{2}, std::byte{3}};
  send_frame(client, 7, payload);
  Frame reply;
  ASSERT_TRUE(recv_frame(client, reply));
  EXPECT_EQ(reply.type, 8);
  EXPECT_EQ(reply.payload.size(), 3u);
  server.join();
}

TEST(Sockets, EmptyPayloadFrame) {
  TcpListener listener(0);
  std::thread server([&] {
    TcpConnection conn = listener.accept();
    Frame frame;
    ASSERT_TRUE(recv_frame(conn, frame));
    EXPECT_TRUE(frame.payload.empty());
    send_frame(conn, frame.type, {});
  });
  TcpConnection client = TcpConnection::connect_local(listener.port());
  send_frame(client, 9, {});
  Frame reply;
  ASSERT_TRUE(recv_frame(client, reply));
  server.join();
}

TEST(Sockets, CleanEofReturnsFalse) {
  TcpListener listener(0);
  std::thread server([&] {
    TcpConnection conn = listener.accept();
    conn.close();
  });
  TcpConnection client = TcpConnection::connect_local(listener.port());
  Frame frame;
  EXPECT_FALSE(recv_frame(client, frame));
  server.join();
}

// ------------------------------------------------------- controller rpc

/// Policy that always returns a fixed option and counts interactions.
class FixedPolicy final : public RoutingPolicy {
 public:
  explicit FixedPolicy(OptionId option) : option_(option) {}
  [[nodiscard]] OptionId choose(const CallContext& call) override {
    ++chosen;
    last_call_id = call.id;
    last_options.assign(call.options.begin(), call.options.end());
    return option_;
  }
  void observe(const Observation& obs) override {
    ++observed;
    last_obs = obs;
  }
  void refresh(TimeSec now) override {
    ++refreshed;
    last_refresh = now;
  }
  [[nodiscard]] std::string_view name() const override { return "fixed"; }

  OptionId option_;
  std::atomic<int> chosen{0}, observed{0}, refreshed{0};
  CallId last_call_id = 0;
  std::vector<OptionId> last_options;
  Observation last_obs;
  TimeSec last_refresh = 0;
};

TEST(Controller, DecisionRoundTrip) {
  FixedPolicy policy(5);
  ControllerServer server(policy);
  server.start();

  ControllerClient client(server.port());
  DecisionRequest req;
  req.call_id = 77;
  req.time = 1000;
  req.src_as = 1;
  req.dst_as = 2;
  req.options = {0, 5, 9};
  EXPECT_EQ(client.request_decision(req), 5);
  EXPECT_EQ(policy.chosen.load(), 1);
  EXPECT_EQ(policy.last_call_id, 77);
  EXPECT_EQ(policy.last_options, req.options);
  client.shutdown();
  server.stop();
  EXPECT_EQ(server.decisions_served(), 1);
}

TEST(Controller, ReportReachesPolicy) {
  FixedPolicy policy(0);
  ControllerServer server(policy);
  server.start();

  ControllerClient client(server.port());
  Observation obs;
  obs.id = 3;
  obs.src_as = 4;
  obs.dst_as = 5;
  obs.option = 2;
  obs.perf = {150.0, 0.9, 6.0};
  client.report(obs);
  EXPECT_EQ(policy.observed.load(), 1);
  EXPECT_DOUBLE_EQ(policy.last_obs.perf.rtt_ms, 150.0);
  client.shutdown();
  server.stop();
  EXPECT_EQ(server.reports_received(), 1);
}

TEST(Controller, RefreshPropagates) {
  FixedPolicy policy(0);
  ControllerServer server(policy);
  server.start();
  ControllerClient client(server.port());
  client.refresh(kSecondsPerDay);
  EXPECT_EQ(policy.refreshed.load(), 1);
  EXPECT_EQ(policy.last_refresh, kSecondsPerDay);
  client.shutdown();
  server.stop();
}

TEST(Controller, ManyConcurrentClients) {
  FixedPolicy policy(1);
  ControllerServer server(policy);
  server.start();

  constexpr int kClients = 8;
  constexpr int kCallsEach = 50;
  std::vector<std::thread> threads;
  std::atomic<int> ok{0};
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      ControllerClient client(server.port());
      for (int i = 0; i < kCallsEach; ++i) {
        DecisionRequest req;
        req.call_id = c * 1000 + i;
        req.options = {0, 1};
        if (client.request_decision(req) == 1) ++ok;
        Observation obs;
        obs.id = req.call_id;
        obs.option = 1;
        obs.perf = {100.0, 0.5, 2.0};
        client.report(obs);
      }
      client.shutdown();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok.load(), kClients * kCallsEach);
  EXPECT_EQ(policy.observed.load(), kClients * kCallsEach);
  server.stop();
}

TEST(Controller, StopIsIdempotent) {
  FixedPolicy policy(0);
  ControllerServer server(policy);
  server.start();
  server.stop();
  server.stop();  // second stop must be harmless
}

TEST(Controller, SurvivesAbruptClientDisconnect) {
  FixedPolicy policy(0);
  ControllerServer server(policy);
  server.start();
  {
    TcpConnection raw = TcpConnection::connect_local(server.port());
    // Send garbage then slam the connection.
    const std::byte junk[5] = {std::byte{0xFF}, std::byte{0xFF}, std::byte{0xFF},
                               std::byte{0xFF}, std::byte{0x01}};
    raw.send_all(junk);
  }
  // The server must still serve new clients.
  ControllerClient client(server.port());
  DecisionRequest req;
  req.call_id = 1;
  req.options = {0};
  EXPECT_EQ(client.request_decision(req), 0);
  client.shutdown();
  server.stop();
}

TEST(Controller, GetStatsReturnsServerTelemetry) {
  FixedPolicy policy(2);
  ControllerServer server(policy);
  server.start();

  ControllerClient client(server.port());
  obs::MetricsRegistry client_metrics;
  client.attach_metrics(&client_metrics);
  DecisionRequest req;
  req.call_id = 11;
  req.options = {0, 2};
  EXPECT_EQ(client.request_decision(req), 2);

  // JSON snapshot reflects the request we just made plus byte counters.
  const std::string json = client.get_stats(obs::StatsFormat::Json);
  EXPECT_NE(json.find("\"rpc.server.decisions\":1"), std::string::npos);
  EXPECT_NE(json.find("rpc.server.bytes_in"), std::string::npos);
  EXPECT_NE(json.find("rpc.server.request_us"), std::string::npos);

  // Prometheus + table renderings come back non-empty over the same wire.
  EXPECT_NE(client.get_stats(obs::StatsFormat::Prometheus).find("rpc_server_decisions"),
            std::string::npos);
  EXPECT_FALSE(client.get_stats(obs::StatsFormat::Table).empty());

  // Client-side instruments saw the round trips.
  const obs::MetricsSnapshot snap = client_metrics.snapshot();
  EXPECT_GT(snap.counter_value("rpc.client.bytes_out"), 0);
  EXPECT_GT(snap.counter_value("rpc.client.bytes_in"), 0);
  const obs::HistogramSample* lat = snap.find_histogram("rpc.client.request_us");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->count, 4);  // decide + three get_stats
  client.shutdown();
  server.stop();
}

TEST(Controller, EndToEndWithRealViaPolicy) {
  RelayOptionTable options;
  const OptionId bounce = options.intern_bounce(0);
  ViaConfig config;
  config.epsilon = 0.0;
  ViaPolicy policy(options, [](RelayId, RelayId) { return PathPerformance{}; }, config);
  ControllerServer server(policy);
  server.start();
  ControllerClient client(server.port());

  // Teach the controller that the bounce is better, then refresh.
  for (int i = 0; i < 6; ++i) {
    Observation obs;
    obs.id = i;
    obs.src_as = 1;
    obs.dst_as = 2;
    obs.option = (i % 2 == 0) ? bounce : RelayOptionTable::direct_id();
    obs.perf = {obs.option == bounce ? 80.0 + i : 300.0 + i, 0.5, 3.0};
    client.report(obs);
  }
  client.refresh(kSecondsPerDay);

  DecisionRequest req;
  req.call_id = 100;
  req.time = kSecondsPerDay + 100;
  req.src_as = 1;
  req.dst_as = 2;
  req.options = {RelayOptionTable::direct_id(), bounce};
  EXPECT_EQ(client.request_decision(req), bounce);
  client.shutdown();
  server.stop();
}

}  // namespace
}  // namespace via
