#include "netsim/world.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace via {
namespace {

TEST(WorldCatalog, CountryCatalogSane) {
  const auto countries = World::country_catalog();
  EXPECT_GE(countries.size(), 40u);
  std::set<std::string> isos;
  for (const auto& c : countries) {
    EXPECT_FALSE(c.name.empty());
    EXPECT_EQ(c.iso.size(), 2u);
    EXPECT_GE(c.centroid.lat_deg, -90.0);
    EXPECT_LE(c.centroid.lat_deg, 90.0);
    EXPECT_GT(c.call_weight, 0.0);
    EXPECT_GT(c.infra_quality, 0.0);
    EXPECT_LE(c.infra_quality, 1.0);
    isos.insert(c.iso);
  }
  EXPECT_EQ(isos.size(), countries.size()) << "duplicate ISO codes";
}

TEST(WorldCatalog, RelaySiteCatalogSane) {
  const auto sites = World::relay_site_catalog();
  EXPECT_GE(sites.size(), 30u);
  std::set<std::string> names;
  for (const auto& s : sites) {
    EXPECT_FALSE(s.city.empty());
    names.insert(s.city);
  }
  EXPECT_EQ(names.size(), sites.size());
}

TEST(World, GeneratesRequestedCounts) {
  const World w({.num_ases = 80, .num_relays = 15, .seed = 1});
  EXPECT_EQ(w.num_ases(), 80);
  EXPECT_EQ(w.num_relays(), 15);
  EXPECT_EQ(static_cast<std::size_t>(w.num_countries()), World::country_catalog().size());
}

TEST(World, RelayCountCappedAtCatalog) {
  const World w({.num_ases = 10, .num_relays = 10'000, .seed = 1});
  EXPECT_EQ(static_cast<std::size_t>(w.num_relays()), World::relay_site_catalog().size());
}

TEST(World, AsFieldsInValidRanges) {
  const World w({.num_ases = 200, .num_relays = 10, .seed = 2});
  for (const auto& as : w.ases()) {
    EXPECT_GE(as.country, 0);
    EXPECT_LT(as.country, w.num_countries());
    EXPECT_GT(as.activity, 0.0);
    EXPECT_GT(as.lastmile_rtt_ms, 0.0);
    EXPECT_GE(as.lastmile_loss_pct, 0.0);
    EXPECT_GT(as.lastmile_jitter_ms, 0.0);
    EXPECT_GT(as.peering_quality, 0.0);
    EXPECT_LT(as.peering_quality, 1.0);
  }
}

TEST(World, DeterministicBySeed) {
  const World a({.num_ases = 50, .num_relays = 8, .seed = 7});
  const World b({.num_ases = 50, .num_relays = 8, .seed = 7});
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(a.as_node(i).country, b.as_node(i).country);
    EXPECT_DOUBLE_EQ(a.as_node(i).lastmile_rtt_ms, b.as_node(i).lastmile_rtt_ms);
  }
}

TEST(World, DifferentSeedsDiffer) {
  const World a({.num_ases = 50, .num_relays = 8, .seed = 7});
  const World b({.num_ases = 50, .num_relays = 8, .seed = 8});
  int diff = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.as_node(i).country != b.as_node(i).country) ++diff;
  }
  EXPECT_GT(diff, 5);
}

TEST(World, PopularCountriesGetMoreAses) {
  const World w({.num_ases = 2000, .num_relays = 8, .seed = 3});
  std::vector<int> per_country(static_cast<std::size_t>(w.num_countries()), 0);
  for (const auto& as : w.ases()) ++per_country[static_cast<std::size_t>(as.country)];
  int us = -1, np = -1;
  const auto countries = w.countries();
  for (std::size_t i = 0; i < countries.size(); ++i) {
    if (countries[i].iso == "US") us = static_cast<int>(i);
    if (countries[i].iso == "NP") np = static_cast<int>(i);
  }
  ASSERT_GE(us, 0);
  ASSERT_GE(np, 0);
  EXPECT_GT(per_country[static_cast<std::size_t>(us)],
            3 * per_country[static_cast<std::size_t>(np)]);
}

TEST(World, PoorCountriesHaveWorseLastMile) {
  const World w({.num_ases = 2000, .num_relays = 8, .seed = 4});
  double good_sum = 0, poor_sum = 0;
  int good_n = 0, poor_n = 0;
  for (const auto& as : w.ases()) {
    const auto& c = w.countries()[static_cast<std::size_t>(as.country)];
    if (c.infra_quality >= 0.9) {
      good_sum += as.lastmile_rtt_ms;
      ++good_n;
    } else if (c.infra_quality <= 0.4) {
      poor_sum += as.lastmile_rtt_ms;
      ++poor_n;
    }
  }
  ASSERT_GT(good_n, 50);
  ASSERT_GT(poor_n, 50);
  EXPECT_GT(poor_sum / poor_n, 1.5 * (good_sum / good_n));
}

TEST(World, ActivityIsHeavyTailed) {
  const World w({.num_ases = 1000, .num_relays = 8, .seed = 5});
  const auto activity = w.as_activity();
  double total = 0, max = 0;
  for (const double a : activity) {
    total += a;
    max = std::max(max, a);
  }
  EXPECT_GT(max / total, 0.01);
}

}  // namespace
}  // namespace via
