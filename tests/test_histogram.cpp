#include "util/histogram.h"

#include <gtest/gtest.h>

namespace via {
namespace {

TEST(BinnedRate, BinGeometry) {
  BinnedRate r(0.0, 10.0, 5);
  EXPECT_EQ(r.bins(), 5u);
  EXPECT_DOUBLE_EQ(r.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(r.bin_center(0), 1.0);
  EXPECT_DOUBLE_EQ(r.bin_center(4), 9.0);
}

TEST(BinnedRate, AccumulatesPerBin) {
  BinnedRate r(0.0, 10.0, 5);
  r.add(1.0, true);
  r.add(1.5, false);
  r.add(9.0, true);
  EXPECT_EQ(r.bin_count(0), 2);
  EXPECT_DOUBLE_EQ(r.bin_rate(0), 0.5);
  EXPECT_EQ(r.bin_count(4), 1);
  EXPECT_DOUBLE_EQ(r.bin_rate(4), 1.0);
  EXPECT_EQ(r.bin_count(2), 0);
}

TEST(BinnedRate, ClampsOutOfRange) {
  BinnedRate r(0.0, 10.0, 5);
  r.add(-5.0, true);
  r.add(100.0, true);
  EXPECT_EQ(r.bin_count(0), 1);
  EXPECT_EQ(r.bin_count(4), 1);
}

TEST(BinnedRate, BoundaryFallsInUpperBin) {
  BinnedRate r(0.0, 10.0, 5);
  r.add(2.0, true);  // exactly at the edge between bin 0 and 1
  EXPECT_EQ(r.bin_count(1), 1);
  EXPECT_EQ(r.bin_count(0), 0);
}

TEST(BinnedRate, MaxRateRespectsMinSamples) {
  BinnedRate r(0.0, 10.0, 5);
  r.add(1.0, true);  // bin 0: rate 1.0 but only 1 sample
  for (int i = 0; i < 10; ++i) r.add(5.0, i < 5);
  EXPECT_DOUBLE_EQ(r.max_rate(1), 1.0);
  EXPECT_DOUBLE_EQ(r.max_rate(5), 0.5);
  EXPECT_DOUBLE_EQ(r.max_rate(100), 0.0);
}

TEST(Histogram, CountsAndTotal) {
  Histogram h(0.0, 100.0, 10);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i));
  EXPECT_EQ(h.total(), 100);
  for (std::size_t b = 0; b < 10; ++b) EXPECT_EQ(h.bin_count(b), 10);
}

TEST(Histogram, CumulativeFraction) {
  Histogram h(0.0, 100.0, 10);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(h.cumulative_fraction(0), 0.1);
  EXPECT_DOUBLE_EQ(h.cumulative_fraction(4), 0.5);
  EXPECT_DOUBLE_EQ(h.cumulative_fraction(9), 1.0);
}

TEST(Histogram, ClampsEdges) {
  Histogram h(0.0, 10.0, 2);
  h.add(-1.0);
  h.add(10.0);
  h.add(11.0);
  EXPECT_EQ(h.bin_count(0), 1);
  EXPECT_EQ(h.bin_count(1), 2);
}

TEST(Histogram, BinCenters) {
  Histogram h(0.0, 10.0, 2);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 2.5);
  EXPECT_DOUBLE_EQ(h.bin_center(1), 7.5);
}

}  // namespace
}  // namespace via
