// §6g observability tests: request tracing (sampling, span buffer,
// StagedSpan parenting, Chrome trace export), the flight recorder
// (bounded ring, JSONL round-trip, the chaos error→retry→quarantine→
// fallback narrative), windowed time series (unit + engine + server
// ticker), the GetTrace/GetFlightRecord RPCs, and the admin HTTP plane
// (/metrics, /healthz, /varz).
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <chrono>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/via_policy.h"
#include "flight_dump.h"
#include "netsim/groundtruth.h"
#include "netsim/world.h"
#include "obs/export.h"
#include "obs/flight_recorder.h"
#include "obs/span.h"
#include "obs/telemetry.h"
#include "obs/timeseries.h"
#include "rpc/admin_http.h"
#include "rpc/client.h"
#include "rpc/errors.h"
#include "rpc/server.h"
#include "rpc/socket.h"
#include "sim/engine.h"
#include "trace/generator.h"

VIA_REGISTER_FLIGHT_DUMP("test_observability");

namespace via {
namespace {

// ------------------------------------------------- minimal JSON validator
//
// A tiny recursive-descent JSON reader used to *validate* exported
// documents (Chrome trace, /varz, time-series JSON) and walk their
// structure.  Not a general-purpose parser — just enough of RFC 8259 for
// schema assertions in this file.

struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object } kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  [[nodiscard]] const JsonValue* find(std::string_view key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonReader {
 public:
  explicit JsonReader(std::string_view text) : text_(text) {}

  [[nodiscard]] std::optional<JsonValue> parse() {
    auto v = value();
    skip_ws();
    if (!v.has_value() || pos_ != text_.size()) return std::nullopt;
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
  }
  [[nodiscard]] bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  [[nodiscard]] std::optional<JsonValue> value() {
    skip_ws();
    if (pos_ >= text_.size()) return std::nullopt;
    const char c = text_[pos_];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string_value();
    if (c == 't' || c == 'f') return boolean();
    if (c == 'n') return null_value();
    return number();
  }

  [[nodiscard]] std::optional<JsonValue> object() {
    if (!consume('{')) return std::nullopt;
    JsonValue out;
    out.kind = JsonValue::Kind::Object;
    skip_ws();
    if (consume('}')) return out;
    while (true) {
      auto key = string_value();
      if (!key.has_value() || !consume(':')) return std::nullopt;
      auto val = value();
      if (!val.has_value()) return std::nullopt;
      out.object.emplace_back(std::move(key->string), std::move(*val));
      if (consume(',')) continue;
      if (consume('}')) return out;
      return std::nullopt;
    }
  }

  [[nodiscard]] std::optional<JsonValue> array() {
    if (!consume('[')) return std::nullopt;
    JsonValue out;
    out.kind = JsonValue::Kind::Array;
    skip_ws();
    if (consume(']')) return out;
    while (true) {
      auto val = value();
      if (!val.has_value()) return std::nullopt;
      out.array.push_back(std::move(*val));
      if (consume(',')) continue;
      if (consume(']')) return out;
      return std::nullopt;
    }
  }

  [[nodiscard]] std::optional<JsonValue> string_value() {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != '"') return std::nullopt;
    ++pos_;
    JsonValue out;
    out.kind = JsonValue::Kind::String;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) return std::nullopt;  // raw control char
      if (c == '\\') {
        if (pos_ >= text_.size()) return std::nullopt;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out.string += '"'; break;
          case '\\': out.string += '\\'; break;
          case '/': out.string += '/'; break;
          case 'b': out.string += '\b'; break;
          case 'f': out.string += '\f'; break;
          case 'n': out.string += '\n'; break;
          case 'r': out.string += '\r'; break;
          case 't': out.string += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return std::nullopt;
            for (int i = 0; i < 4; ++i) {
              if (!std::isxdigit(static_cast<unsigned char>(text_[pos_ + i]))) return std::nullopt;
            }
            pos_ += 4;
            out.string += '?';  // value unimportant for schema checks
            break;
          }
          default: return std::nullopt;
        }
      } else {
        out.string += c;
      }
    }
    return std::nullopt;  // unterminated
  }

  [[nodiscard]] std::optional<JsonValue> boolean() {
    JsonValue out;
    out.kind = JsonValue::Kind::Bool;
    if (text_.substr(pos_, 4) == "true") {
      pos_ += 4;
      out.boolean = true;
      return out;
    }
    if (text_.substr(pos_, 5) == "false") {
      pos_ += 5;
      return out;
    }
    return std::nullopt;
  }

  [[nodiscard]] std::optional<JsonValue> null_value() {
    if (text_.substr(pos_, 4) != "null") return std::nullopt;
    pos_ += 4;
    return JsonValue{};
  }

  [[nodiscard]] std::optional<JsonValue> number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return std::nullopt;
    JsonValue out;
    out.kind = JsonValue::Kind::Number;
    try {
      out.number = std::stod(std::string(text_.substr(start, pos_ - start)));
    } catch (const std::exception&) {
      return std::nullopt;
    }
    return out;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

std::optional<JsonValue> parse_json(std::string_view text) {
  return JsonReader(text).parse();
}

// ------------------------------------------------------- tracer + sampling

TEST(Tracing, SampleRateZeroDisablesAndNullsTheTracer) {
  obs::Telemetry telemetry;  // default TraceConfig: sample_rate 0
  EXPECT_FALSE(telemetry.tracer.enabled());
  EXPECT_EQ(telemetry.tracer_if_enabled(), nullptr);

  // An inert ScopedSpan records nothing and parents as 0.
  obs::ScopedSpan span(nullptr, 1, 0, "noop");
  EXPECT_FALSE(span.active());
  EXPECT_EQ(span.span_id(), 0u);
  EXPECT_EQ(telemetry.tracer.buffer().recorded(), 0);
}

TEST(Tracing, HeadSamplingIsDeterministicAcrossTracers) {
  obs::Tracer a(obs::TraceConfig{.sample_rate = 64});
  obs::Tracer b(obs::TraceConfig{.sample_rate = 64});
  int sampled = 0;
  for (std::uint64_t call = 0; call < 64 * 64; ++call) {
    const std::uint64_t id = obs::derive_trace_id(call);
    EXPECT_EQ(a.sampled(id), b.sampled(id));  // same verdict everywhere
    if (a.sampled(id)) ++sampled;
  }
  // Roughly 1-in-64 of 4096 ids; allow generous slack for hash variance.
  EXPECT_GT(sampled, 16);
  EXPECT_LT(sampled, 256);

  obs::Tracer all(obs::TraceConfig{.sample_rate = 1});
  EXPECT_TRUE(all.sampled(0));
  EXPECT_TRUE(all.sampled(0xdeadbeef));
}

TEST(Tracing, SpanBufferIsBoundedAndSnapshotsInStartOrder) {
  obs::SpanBuffer buffer(/*capacity=*/64, /*stripes=*/4);
  for (std::uint64_t i = 0; i < 200; ++i) {
    obs::Span s;
    s.trace_id = i;
    s.span_id = i + 1;
    s.name = "unit";
    s.start_ns = 1'000 + i;
    s.dur_ns = 5;
    buffer.add(s);
  }
  EXPECT_EQ(buffer.recorded(), 200);
  const std::vector<obs::Span> spans = buffer.snapshot();
  EXPECT_LE(spans.size(), 64u);
  EXPECT_GT(spans.size(), 0u);
  EXPECT_TRUE(std::is_sorted(spans.begin(), spans.end(),
                             [](const obs::Span& x, const obs::Span& y) {
                               return x.start_ns < y.start_ns;
                             }));
  buffer.clear();
  EXPECT_TRUE(buffer.snapshot().empty());
}

TEST(Tracing, StagedSpanEmitsRootPlusOneChildPerStage) {
  obs::Tracer tracer(obs::TraceConfig{.sample_rate = 1});
  {
    obs::StagedSpan staged(&tracer, /*trace_id=*/7, /*parent_id=*/0, "policy.choose");
    ASSERT_TRUE(staged.active());
    staged.stage("candidates");
    staged.stage("bandit");
    staged.name_tail("served_ucb");
  }
  const std::vector<obs::Span> spans = tracer.buffer().snapshot();
  ASSERT_EQ(spans.size(), 4u);  // root + 2 stages + named tail

  const auto root = std::find_if(spans.begin(), spans.end(), [](const obs::Span& s) {
    return std::string_view(s.name) == "policy.choose";
  });
  ASSERT_NE(root, spans.end());
  EXPECT_EQ(root->parent_id, 0u);
  EXPECT_EQ(root->trace_id, 7u);

  std::vector<std::string_view> child_names;
  for (const obs::Span& s : spans) {
    if (&s == &*root) continue;
    EXPECT_EQ(s.parent_id, root->span_id);  // every stage parents under the root
    EXPECT_EQ(s.trace_id, 7u);
    EXPECT_GE(s.start_ns, root->start_ns);
    EXPECT_LE(s.start_ns + s.dur_ns, root->start_ns + root->dur_ns);
    child_names.push_back(s.name);
  }
  EXPECT_NE(std::find(child_names.begin(), child_names.end(), "candidates"), child_names.end());
  EXPECT_NE(std::find(child_names.begin(), child_names.end(), "bandit"), child_names.end());
  EXPECT_NE(std::find(child_names.begin(), child_names.end(), "served_ucb"), child_names.end());
}

TEST(Tracing, ChromeTraceExportIsSchemaValidJson) {
  obs::Tracer tracer(obs::TraceConfig{.sample_rate = 1});
  for (int i = 0; i < 10; ++i) {
    obs::ScopedSpan span(&tracer, static_cast<std::uint64_t>(i + 1), 0, "rpc.decide");
    std::this_thread::yield();
  }
  const std::string doc = obs::chrome_trace_json(tracer.buffer());
  const std::optional<JsonValue> parsed = parse_json(doc);
  ASSERT_TRUE(parsed.has_value()) << doc;
  ASSERT_EQ(parsed->kind, JsonValue::Kind::Object);
  const JsonValue* events = parsed->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->kind, JsonValue::Kind::Array);
  ASSERT_EQ(events->array.size(), 10u);
  for (const JsonValue& e : events->array) {
    ASSERT_EQ(e.kind, JsonValue::Kind::Object);
    const JsonValue* ph = e.find("ph");
    ASSERT_NE(ph, nullptr);
    EXPECT_EQ(ph->string, "X");  // complete events only
    const JsonValue* name = e.find("name");
    ASSERT_NE(name, nullptr);
    EXPECT_EQ(name->string, "rpc.decide");
    for (const char* field : {"ts", "dur", "pid", "tid"}) {
      const JsonValue* v = e.find(field);
      ASSERT_NE(v, nullptr) << field;
      EXPECT_EQ(v->kind, JsonValue::Kind::Number) << field;
    }
  }

  // Byte-capped export stays valid JSON and keeps the newest spans.
  const std::string capped = obs::chrome_trace_json(tracer.buffer(), doc.size() / 2);
  ASSERT_LE(capped.size(), doc.size());
  const std::optional<JsonValue> capped_parsed = parse_json(capped);
  ASSERT_TRUE(capped_parsed.has_value()) << capped;
  const JsonValue* capped_events = capped_parsed->find("traceEvents");
  ASSERT_NE(capped_events, nullptr);
  EXPECT_LT(capped_events->array.size(), events->array.size());
}

// ---------------------------------------------------------- flight recorder

TEST(FlightRecorder, EveryKindRoundTripsJsonl) {
  for (std::size_t k = 0; k < obs::kNumFlightEventKinds; ++k) {
    obs::FlightEvent e;
    e.seq = static_cast<std::int64_t>(k) + 100;
    e.wall_us = 123'456;
    e.time = 86'400;
    e.kind = static_cast<obs::FlightEventKind>(k);
    e.detail = "detail with \"quotes\" and\nnewlines\\";
    e.a = 42;
    e.b = -1;
    const std::string line = e.to_jsonl();
    EXPECT_EQ(line.find('\n'), std::string::npos) << line;  // one event per line
    const std::optional<obs::FlightEvent> back = obs::FlightEvent::from_jsonl(line);
    ASSERT_TRUE(back.has_value()) << line;
    EXPECT_EQ(back->seq, e.seq);
    EXPECT_EQ(back->wall_us, e.wall_us);
    EXPECT_EQ(back->time, e.time);
    EXPECT_EQ(back->kind, e.kind);
    EXPECT_EQ(back->detail, e.detail);
    EXPECT_EQ(back->a, e.a);
    EXPECT_EQ(back->b, e.b);
  }
  EXPECT_FALSE(obs::FlightEvent::from_jsonl("").has_value());
  EXPECT_FALSE(obs::FlightEvent::from_jsonl("not json").has_value());
}

TEST(FlightRecorder, RingIsBoundedAndSeqOrdered) {
  obs::FlightRecorder rec(/*capacity=*/4);
  ASSERT_TRUE(rec.enabled());
  for (int i = 0; i < 10; ++i) {
    rec.record(obs::FlightEventKind::Note, "note", i);
  }
  EXPECT_EQ(rec.recorded(), 10);
  const std::vector<obs::FlightEvent> events = rec.snapshot();
  ASSERT_EQ(events.size(), 4u);  // only the newest survive
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GT(events[i].seq, events[i - 1].seq);
  }
  EXPECT_EQ(events.back().a, 9);  // newest kept

  obs::FlightRecorder disabled(0);
  EXPECT_FALSE(disabled.enabled());
  disabled.record(obs::FlightEventKind::Note, "dropped");
  EXPECT_TRUE(disabled.snapshot().empty());
}

TEST(FlightRecorder, MirrorsIntoTheProcessRecorder) {
  const std::int64_t before = obs::FlightRecorder::process().recorded();
  obs::FlightRecorder rec(16);
  rec.record(obs::FlightEventKind::Note, "mirror-check", 7);
  EXPECT_GT(obs::FlightRecorder::process().recorded(), before);
  const auto proc = obs::FlightRecorder::process().snapshot();
  EXPECT_TRUE(std::any_of(proc.begin(), proc.end(), [](const obs::FlightEvent& e) {
    return e.detail == "mirror-check" && e.a == 7;
  }));
}

/// The §6g acceptance narrative: a flight-recorder dump alone must explain
/// an incident end to end — RPC error, retry, relay quarantine, fallback
/// to direct — in one totally ordered, JSONL-parseable story.
TEST(FlightRecorder, ChaosStoryReadsErrorRetryQuarantineFallback) {
  obs::FlightRecorder client_rec(256);

  // A port that refuses connections: bind, then drop the listener.
  std::uint16_t dead_port = 0;
  {
    TcpListener listener(0);
    dead_port = listener.port();
  }

  // Act 1: a client without fallback fails and retries.
  {
    ClientConfig config;
    config.request_timeout_ms = 50;
    config.max_retries = 2;
    config.backoff_base_ms = 1;
    ControllerClient client(dead_port, config);
    client.attach_flight(&client_rec);
    DecisionRequest req;
    req.call_id = 1;
    req.options = {0, 1};
    EXPECT_THROW((void)client.request_decision(req), RpcError);
  }

  // Act 2: catastrophic observations quarantine a relay inside the policy.
  obs::Telemetry policy_telemetry;
  RelayOptionTable options;
  const OptionId bounce = options.intern_bounce(0);
  ViaConfig via;
  via.health.enabled = true;
  via.health.degrade_after = 1;
  via.health.quarantine_after = 2;
  via.health.quarantine_period = 1'000'000;
  ViaPolicy policy(
      options, [](RelayId, RelayId) { return PathPerformance{10.0, 0.1, 1.0}; }, via);
  policy.attach_telemetry(&policy_telemetry);
  for (int i = 0; i < 2; ++i) {
    Observation o;
    o.id = 100 + i;
    o.time = 1'000 + i;
    o.src_as = 1;
    o.dst_as = 2;
    o.option = bounce;
    o.perf = {2500.0, 100.0, 120.0};
    policy.observe(o);
  }
  ASSERT_EQ(policy.relay_health().state_of(0), RelayHealthTracker::State::Quarantined);

  // Act 3: a fallback-enabled client gives up and serves direct.
  {
    ClientConfig config;
    config.request_timeout_ms = 50;
    config.max_retries = 1;
    config.backoff_base_ms = 1;
    config.fallback_direct = true;
    ControllerClient client(dead_port, config);
    client.attach_flight(&client_rec);
    DecisionRequest req;
    req.call_id = 2;
    req.options = {0, 1};
    EXPECT_EQ(client.request_decision(req), RelayOptionTable::direct_id());
  }

  // Merge both recorders; the process-global seq gives one total order.
  std::vector<obs::FlightEvent> events = client_rec.snapshot();
  const std::vector<obs::FlightEvent> policy_events = policy_telemetry.flight.snapshot();
  events.insert(events.end(), policy_events.begin(), policy_events.end());
  std::sort(events.begin(), events.end(),
            [](const obs::FlightEvent& x, const obs::FlightEvent& y) { return x.seq < y.seq; });

  // The JSONL dump round-trips line by line.
  std::ostringstream dump;
  for (const obs::FlightEvent& e : events) dump << e.to_jsonl() << "\n";
  std::istringstream in(dump.str());
  std::string line;
  std::vector<obs::FlightEvent> parsed;
  while (std::getline(in, line)) {
    const std::optional<obs::FlightEvent> e = obs::FlightEvent::from_jsonl(line);
    ASSERT_TRUE(e.has_value()) << line;
    parsed.push_back(*e);
  }
  ASSERT_EQ(parsed.size(), events.size());

  // The parsed story contains error -> retry -> quarantine -> fallback, in
  // that seq order.
  const auto first_of = [&parsed](obs::FlightEventKind kind,
                                  std::size_t from) -> std::optional<std::size_t> {
    for (std::size_t i = from; i < parsed.size(); ++i) {
      if (parsed[i].kind == kind) return i;
    }
    return std::nullopt;
  };
  const auto error_at = first_of(obs::FlightEventKind::RpcError, 0);
  ASSERT_TRUE(error_at.has_value());
  const auto retry_at = first_of(obs::FlightEventKind::RpcRetry, *error_at);
  ASSERT_TRUE(retry_at.has_value());
  const auto quarantine_at = first_of(obs::FlightEventKind::HealthQuarantine, *retry_at);
  ASSERT_TRUE(quarantine_at.has_value());
  const auto fallback_at = first_of(obs::FlightEventKind::RpcFallback, *quarantine_at);
  ASSERT_TRUE(fallback_at.has_value());
  policy.attach_telemetry(nullptr);
}

// -------------------------------------------------------------- time series

TEST(TimeSeries, WindowsCarryDeltasAndAnnotations) {
  obs::MetricsRegistry registry;
  obs::TimeSeriesRecorder recorder(&registry, /*window=*/10.0);

  registry.counter("engine.calls").inc(3);
  registry.histogram("engine.choose_ns", obs::kLatencyBoundsNs).observe(100.0);
  recorder.annotate("pnr_any", 0.25);
  recorder.close_window(0.0, 10.0);

  registry.counter("engine.calls").inc(2);
  recorder.close_window(10.0, 20.0);

  const obs::TimeSeries& series = recorder.series();
  ASSERT_EQ(series.windows.size(), 2u);
  EXPECT_DOUBLE_EQ(series.window, 10.0);

  const obs::TimeSeriesWindow& w0 = series.windows[0];
  EXPECT_DOUBLE_EQ(w0.start, 0.0);
  EXPECT_DOUBLE_EQ(w0.end, 10.0);
  EXPECT_EQ(w0.counter_delta("engine.calls"), 3);
  EXPECT_DOUBLE_EQ(w0.value("pnr_any"), 0.25);
  ASSERT_EQ(w0.histogram_deltas.size(), 1u);
  EXPECT_EQ(w0.histogram_deltas[0].second.first, 1);           // delta count
  EXPECT_DOUBLE_EQ(w0.histogram_deltas[0].second.second, 100.0);  // window mean

  const obs::TimeSeriesWindow& w1 = series.windows[1];
  EXPECT_EQ(w1.counter_delta("engine.calls"), 2);
  // Untouched instruments are omitted: windows are sparse.
  EXPECT_TRUE(w1.histogram_deltas.empty());
  EXPECT_DOUBLE_EQ(w1.value("pnr_any", -1.0), -1.0);

  // The JSON rendering is a valid document with the expected shape.
  const std::optional<JsonValue> parsed = parse_json(series.to_json());
  ASSERT_TRUE(parsed.has_value());
  const JsonValue* windows = parsed->find("windows");
  ASSERT_NE(windows, nullptr);
  EXPECT_EQ(windows->array.size(), 2u);
}

// ------------------------------------------------------- engine integration

class ObservabilityEngineTest : public ::testing::Test {
 protected:
  ObservabilityEngineTest() : world_({.num_ases = 30, .num_relays = 6, .seed = 51}), gt_(world_) {
    TraceConfig config;
    config.days = 3;
    config.total_calls = 3'000;
    config.active_pairs = 40;
    config.seed = 9;
    TraceGenerator gen(gt_, config);
    arrivals_ = gen.generate_arrivals();
  }

  [[nodiscard]] RunResult run_via(const RunConfig& run) {
    ViaConfig via;
    via.seed = 42;
    ViaPolicy policy(
        gt_.option_table(),
        [this](RelayId a, RelayId b) { return gt_.backbone(a, b); }, via);
    SimulationEngine engine(gt_, arrivals_, run);
    return engine.run(policy);
  }

  World world_;
  GroundTruth gt_;
  std::vector<CallArrival> arrivals_;
};

TEST_F(ObservabilityEngineTest, TracingOffByDefaultAndBitIdenticalWhenOn) {
  RunConfig off;
  off.background_relay_fraction = 0.0;
  RunConfig on = off;
  on.trace.sample_rate = 8;

  const RunResult base = run_via(off);
  const RunResult traced = run_via(on);

  EXPECT_TRUE(base.spans.empty());
  EXPECT_GT(traced.spans.size(), 0u);

  // Tracing must not perturb the replay: the exact per-call metric stream
  // matches an untraced run (same seeds, same decisions).
  EXPECT_EQ(base.calls, traced.calls);
  EXPECT_EQ(base.used_direct, traced.used_direct);
  EXPECT_EQ(base.used_bounce, traced.used_bounce);
  EXPECT_EQ(base.used_transit, traced.used_transit);
  for (std::size_t m = 0; m < kNumMetrics; ++m) {
    EXPECT_EQ(base.values[m], traced.values[m]);
  }

  // Sampled spans belong to policy.choose and parent correctly.
  std::map<std::uint64_t, int> roots_per_trace;
  for (const obs::Span& s : traced.spans) {
    if (s.parent_id == 0) {
      EXPECT_EQ(std::string_view(s.name), "policy.choose");
      ++roots_per_trace[s.trace_id];
    }
  }
  ASSERT_GT(roots_per_trace.size(), 0u);
  for (const auto& [trace_id, roots] : roots_per_trace) {
    EXPECT_EQ(roots, 1) << "trace " << trace_id;
  }
}

TEST_F(ObservabilityEngineTest, TimeseriesWindowsTileTheRunAndReconcile) {
  RunConfig run;
  run.background_relay_fraction = 0.0;
  run.timeseries_window = 12 * 3600;  // half a sim day

  const RunResult result = run_via(run);
  ASSERT_FALSE(result.timeseries.empty());
  ASSERT_GE(result.timeseries.windows.size(), 4u);

  std::int64_t calls_delta_sum = 0;
  double evaluated_sum = 0.0;
  double prev_end = 0.0;
  for (const obs::TimeSeriesWindow& w : result.timeseries.windows) {
    EXPECT_LT(w.start, w.end);
    EXPECT_GE(w.start, prev_end);  // windows never overlap
    prev_end = w.end;
    calls_delta_sum += w.counter_delta("engine.calls");
    evaluated_sum += w.value("evaluated_calls");
  }
  // Per-window deltas reconcile with end-of-run totals.
  EXPECT_EQ(calls_delta_sum, result.calls);
  EXPECT_DOUBLE_EQ(evaluated_sum, static_cast<double>(result.evaluated_calls));
}

TEST_F(ObservabilityEngineTest, FlightRecorderCapturesRefreshCadence) {
  RunConfig run;
  run.background_relay_fraction = 0.0;
  const RunResult result = run_via(run);

  int prepares = 0;
  int commits = 0;
  std::int64_t last_seq = -1;
  for (const obs::FlightEvent& e : result.flight) {
    EXPECT_GT(e.seq, last_seq);  // snapshot comes back in seq order
    last_seq = e.seq;
    if (e.kind == obs::FlightEventKind::RefreshPrepare) ++prepares;
    if (e.kind == obs::FlightEventKind::RefreshCommit) ++commits;
  }
  EXPECT_GT(prepares, 0);
  EXPECT_EQ(prepares, commits);  // every prepare published a model

  // Disabling the ring removes the capture entirely.
  RunConfig disabled = run;
  disabled.flight_capacity = 0;
  EXPECT_TRUE(run_via(disabled).flight.empty());
}

// ------------------------------------------------------- RPC + admin plane

class CountingPolicy final : public RoutingPolicy {
 public:
  [[nodiscard]] OptionId choose(const CallContext& call) override {
    last_trace_id = call.trace_id;
    last_parent_span = call.parent_span;
    return 1;
  }
  void observe(const Observation&) override {}
  void refresh(TimeSec) override {}
  [[nodiscard]] std::string_view name() const override { return "counting"; }

  std::uint64_t last_trace_id = 0;
  std::uint64_t last_parent_span = 0;
};

TEST(RpcObservability, GetTraceReturnsSchemaValidChromeJson) {
  CountingPolicy policy;
  ControllerServer server(policy, 0, {.trace_sample = 1});
  server.start();

  ControllerClient client(server.port());
  DecisionRequest req;
  req.call_id = 77;
  req.options = {0, 1};
  EXPECT_EQ(client.request_decision(req), 1);
  // The server derived a deterministic trace id and parented the policy
  // under its rpc.decide span.
  EXPECT_EQ(policy.last_trace_id, obs::derive_trace_id(77));
  EXPECT_NE(policy.last_parent_span, 0u);

  const std::string doc = client.get_trace();
  const std::optional<JsonValue> parsed = parse_json(doc);
  ASSERT_TRUE(parsed.has_value()) << doc;
  const JsonValue* events = parsed->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_GT(events->array.size(), 0u);
  EXPECT_TRUE(std::any_of(events->array.begin(), events->array.end(), [](const JsonValue& e) {
    const JsonValue* name = e.find("name");
    return name != nullptr && name->string == "rpc.decide";
  }));

  client.shutdown();
  server.stop();
}

TEST(RpcObservability, GetFlightRecordReturnsParseableCappedJsonl) {
  CountingPolicy policy;
  ControllerServer server(policy);
  server.start();

  // Provoke a structural event: a malformed frame is a ProtocolError.
  {
    TcpConnection conn = TcpConnection::connect_local(server.port());
    const std::array<std::byte, 2> junk{std::byte{0x01}, std::byte{0x02}};
    send_frame(conn, static_cast<std::uint8_t>(MsgType::Report), junk);
    Frame frame;
    ASSERT_TRUE(recv_frame(conn, frame));
  }

  ControllerClient client(server.port());
  const std::string jsonl = client.get_flight_record();
  ASSERT_FALSE(jsonl.empty());
  std::istringstream in(jsonl);
  std::string line;
  bool saw_protocol_error = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const std::optional<obs::FlightEvent> e = obs::FlightEvent::from_jsonl(line);
    ASSERT_TRUE(e.has_value()) << line;
    if (e->kind == obs::FlightEventKind::ProtocolError) saw_protocol_error = true;
  }
  EXPECT_TRUE(saw_protocol_error);

  // A byte cap trims whole lines from the front (newest events kept).
  const std::string capped = client.get_flight_record(/*max_bytes=*/64);
  EXPECT_LE(capped.size(), 64u);
  std::istringstream capped_in(capped);
  while (std::getline(capped_in, line)) {
    if (line.empty()) continue;
    EXPECT_TRUE(obs::FlightEvent::from_jsonl(line).has_value()) << line;
  }

  client.shutdown();
  server.stop();
}

/// Minimal HTTP GET against the admin sidecar: sends the request, reads to
/// EOF, splits status line / headers / body.
struct HttpResponse {
  std::string status_line;
  std::string headers;
  std::string body;
};

HttpResponse http_get(std::uint16_t port, const std::string& path) {
  TcpConnection conn = TcpConnection::connect_local(port);
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  conn.send_all(std::as_bytes(std::span(request.data(), request.size())));
  std::string raw;
  std::byte byte;
  while (conn.recv_all(std::span(&byte, 1))) {
    raw += static_cast<char>(byte);
  }
  HttpResponse resp;
  const std::size_t line_end = raw.find("\r\n");
  resp.status_line = line_end == std::string::npos ? raw : raw.substr(0, line_end);
  const std::size_t header_end = raw.find("\r\n\r\n");
  if (header_end != std::string::npos) {
    resp.headers = raw.substr(0, header_end);
    resp.body = raw.substr(header_end + 4);
  }
  return resp;
}

TEST(AdminHttp, ServesMetricsHealthzVarzAndTrace) {
  obs::Telemetry telemetry(4096, obs::TraceConfig{.sample_rate = 1});
  telemetry.registry.counter("rpc.server.decisions").inc(5);
  telemetry.registry.histogram("rpc.server.request_us", obs::kLatencyBoundsUs).observe(12.0);
  telemetry.flight.record(obs::FlightEventKind::Note, "admin-test");
  {
    obs::ScopedSpan span(&telemetry.tracer, 1, 0, "rpc.decide");
  }

  AdminHttpServer http(telemetry, 0);
  http.set_varz([] { return std::string("\"decisions_served\":5"); });
  http.start();
  ASSERT_NE(http.port(), 0);

  const HttpResponse metrics = http_get(http.port(), "/metrics");
  EXPECT_NE(metrics.status_line.find("200"), std::string::npos);
  EXPECT_NE(metrics.headers.find("text/plain"), std::string::npos);
  EXPECT_NE(metrics.body.find("rpc_server_decisions 5"), std::string::npos);
  EXPECT_NE(metrics.body.find("rpc_server_request_us_bucket"), std::string::npos);

  const HttpResponse healthz = http_get(http.port(), "/healthz");
  EXPECT_NE(healthz.status_line.find("200"), std::string::npos);
  EXPECT_EQ(healthz.body, "ok\n");

  const HttpResponse varz = http_get(http.port(), "/varz");
  EXPECT_NE(varz.status_line.find("200"), std::string::npos);
  const std::optional<JsonValue> varz_json = parse_json(varz.body);
  ASSERT_TRUE(varz_json.has_value()) << varz.body;
  const JsonValue* tracing = varz_json->find("tracing_enabled");
  ASSERT_NE(tracing, nullptr);
  EXPECT_TRUE(tracing->boolean);
  const JsonValue* extra = varz_json->find("decisions_served");
  ASSERT_NE(extra, nullptr);
  EXPECT_DOUBLE_EQ(extra->number, 5.0);
  const JsonValue* counters = varz_json->find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_NE(counters->find("rpc.server.decisions"), nullptr);

  const HttpResponse trace = http_get(http.port(), "/trace");
  EXPECT_NE(trace.status_line.find("200"), std::string::npos);
  EXPECT_TRUE(parse_json(trace.body).has_value()) << trace.body;

  const HttpResponse flight = http_get(http.port(), "/flightrecord");
  EXPECT_NE(flight.status_line.find("200"), std::string::npos);
  EXPECT_NE(flight.body.find("admin-test"), std::string::npos);

  const HttpResponse missing = http_get(http.port(), "/nope");
  EXPECT_NE(missing.status_line.find("404"), std::string::npos);

  http.stop();
}

TEST(AdminHttp, ControllerTimeseriesTickerClosesWallClockWindows) {
  CountingPolicy policy;
  ControllerServer server(policy, 0, {.timeseries_window_ms = 20});
  server.start();

  ControllerClient client(server.port());
  for (int i = 0; i < 5; ++i) {
    DecisionRequest req;
    req.call_id = i;
    req.options = {0, 1};
    (void)client.request_decision(req);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(70));
  client.shutdown();
  server.stop();

  const obs::TimeSeries series = server.timeseries();
  ASSERT_FALSE(series.empty());
  std::int64_t decisions = 0;
  for (const obs::TimeSeriesWindow& w : series.windows) {
    decisions += w.counter_delta("rpc.server.decisions");
  }
  EXPECT_EQ(decisions, 5);
}

}  // namespace
}  // namespace via
