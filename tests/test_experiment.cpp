#include "sim/experiment.h"

#include <gtest/gtest.h>

namespace via {
namespace {

class ExperimentTest : public ::testing::Test {
 protected:
  static Experiment& exp() {
    // Expensive to build; share one instance across tests (read-mostly:
    // runs create fresh policies and engines each time).
    static Experiment instance(Experiment::default_setup(Experiment::Scale::Small));
    return instance;
  }
};

TEST_F(ExperimentTest, SetupScalesOrdered) {
  const auto small = Experiment::default_setup(Experiment::Scale::Small);
  const auto medium = Experiment::default_setup(Experiment::Scale::Medium);
  const auto large = Experiment::default_setup(Experiment::Scale::Large);
  EXPECT_LT(small.trace.total_calls, medium.trace.total_calls);
  EXPECT_LT(medium.trace.total_calls, large.trace.total_calls);
  EXPECT_LT(small.world.num_ases, large.world.num_ases);
}

TEST_F(ExperimentTest, ArrivalsMatchConfig) {
  EXPECT_EQ(exp().arrivals().size(),
            static_cast<std::size_t>(exp().setup().trace.total_calls));
}

TEST_F(ExperimentTest, PolicyOrderingHolds) {
  auto def = exp().make_default();
  auto via_policy = exp().make_via(Metric::Rtt);
  auto oracle = exp().make_oracle(Metric::Rtt);

  const RunResult base = exp().run(*def);
  const RunResult mine = exp().run(*via_policy);
  const RunResult best = exp().run(*oracle);

  // The paper's headline ordering: oracle <= via <= default on PNR.
  EXPECT_LT(best.pnr.pnr(Metric::Rtt), mine.pnr.pnr(Metric::Rtt));
  EXPECT_LT(mine.pnr.pnr(Metric::Rtt), base.pnr.pnr(Metric::Rtt));
  EXPECT_LT(mine.pnr.pnr_any(), base.pnr.pnr_any());
}

TEST_F(ExperimentTest, StrawmenBeatDefaultButTrailViaOnPnr) {
  auto def = exp().make_default();
  auto via_policy = exp().make_via(Metric::Rtt);
  auto strawman1 = exp().make_prediction_only(Metric::Rtt);

  const RunResult base = exp().run(*def);
  const RunResult mine = exp().run(*via_policy);
  const RunResult pred = exp().run(*strawman1);

  EXPECT_LT(pred.pnr.pnr(Metric::Rtt), base.pnr.pnr(Metric::Rtt));
  // Via should not be (meaningfully) worse than the pure predictor.
  EXPECT_LT(mine.pnr.pnr(Metric::Rtt), pred.pnr.pnr(Metric::Rtt) * 1.15);
}

TEST_F(ExperimentTest, ComparePnrComputesReductions) {
  RunResult base, treated;
  base.pnr = PnrAccumulator();
  for (int i = 0; i < 100; ++i) base.pnr.add({i < 20 ? 400.0 : 100.0, 0.0, 0.0});
  for (int i = 0; i < 100; ++i) treated.pnr.add({i < 10 ? 400.0 : 100.0, 0.0, 0.0});
  const PnrComparison cmp = compare_pnr(base, treated);
  EXPECT_NEAR(cmp.reduction_pct[metric_index(Metric::Rtt)], 50.0, 1e-9);
}

TEST_F(ExperimentTest, ComparePercentilesImprovement) {
  RunResult base, treated;
  for (int i = 0; i < 1000; ++i) {
    base.values[0].push_back(200.0 + i * 0.1);
    treated.values[0].push_back(100.0 + i * 0.1);
  }
  const auto cmp = compare_percentiles(base, treated, Metric::Rtt, {50.0});
  ASSERT_EQ(cmp.improvement_pct.size(), 1u);
  EXPECT_GT(cmp.improvement_pct[0], 20.0);
  EXPECT_NEAR(cmp.baseline_values[0], 250.0, 1.0);
  EXPECT_NEAR(cmp.treated_values[0], 150.0, 1.0);
}

TEST_F(ExperimentTest, BestOptionDurationsReasonable) {
  const auto& pairs = exp().generator().traffic_matrix().pairs;
  const auto durations = best_option_durations(
      exp().ground_truth(), std::span(pairs.data(), std::min<std::size_t>(pairs.size(), 40)),
      exp().setup().trace.days, Metric::Rtt);
  ASSERT_GT(durations.size(), 10u);
  for (const double d : durations) {
    EXPECT_GE(d, 1.0);
    EXPECT_LE(d, exp().setup().trace.days);
  }
  // Dynamics must make at least some pairs flip their best option quickly.
  const int short_lived =
      static_cast<int>(std::count_if(durations.begin(), durations.end(),
                                     [](double d) { return d <= 3.0; }));
  EXPECT_GT(short_lived, 0);
}

TEST_F(ExperimentTest, ViaRelaysMajorityOfCalls) {
  auto via_policy = exp().make_via(Metric::Rtt);
  const RunResult r = exp().run(*via_policy);
  // Matches the paper's finding that most calls go to relays (~92%) —
  // loosely: more than half.
  EXPECT_GT(r.relayed_fraction(), 0.35);
  EXPECT_GT(r.used_bounce, 0);
  EXPECT_GT(r.used_transit, 0);
}

TEST_F(ExperimentTest, BudgetedViaRelaysLess) {
  auto unbudgeted = exp().make_via(Metric::Rtt);
  ViaConfig config;
  config.budget = {.fraction = 0.2, .aware = true};
  auto budgeted = exp().make_via(Metric::Rtt, config);
  const RunResult full = exp().run(*unbudgeted);
  const RunResult capped = exp().run(*budgeted);
  EXPECT_LT(capped.relayed_fraction(), 0.3);
  EXPECT_LT(capped.relayed_fraction(), full.relayed_fraction());
}

}  // namespace
}  // namespace via
