// Event-driven serving mode tests (DESIGN.md §6h/§6j): the epoll reactor
// behind ServerConfig::reactor_threads must preserve every protocol
// behavior of the thread-per-connection path — round trips, shedding,
// client deadlines, protocol-error replies, graceful drain — while adding
// pipelined frame batching through RoutingPolicy::choose_batch.  The
// backend-parameterized suite at the bottom runs protocol, backpressure,
// and pinning behaviors against both event-driven backends (epoll and
// io_uring); uring cases SKIP explicitly on kernels without io_uring.
// This file also runs under TSan in CI (tools/ci.sh): the hammer test
// drives all reactor workers concurrently.
#include <gtest/gtest.h>

#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "core/via_policy.h"
#include "obs/metrics.h"
#include "rpc/client.h"
#include "rpc/errors.h"
#include "rpc/framing.h"
#include "rpc/messages.h"
#include "rpc/server.h"
#include "rpc/socket.h"
#include "rpc/uring_reactor.h"

namespace via {
namespace {

/// Deterministic per-call policy: pick options[call_id % options.size()],
/// so pipelined and sequential serving are directly comparable.
class ModuloPolicy final : public RoutingPolicy {
 public:
  [[nodiscard]] OptionId choose(const CallContext& call) override {
    ++chosen;
    if (call.options.empty()) return 0;
    return call.options[static_cast<std::size_t>(call.id) % call.options.size()];
  }
  void observe(const Observation&) override { ++observed; }
  void refresh(TimeSec) override { ++refreshed; }
  [[nodiscard]] std::string_view name() const override { return "modulo"; }

  std::atomic<int> chosen{0}, observed{0}, refreshed{0};
};

/// Stalls in choose() so client-side deadlines fire under the reactor.
class SlowPolicy final : public RoutingPolicy {
 public:
  explicit SlowPolicy(int delay_ms) : delay_ms_(delay_ms) {}
  [[nodiscard]] OptionId choose(const CallContext&) override {
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms_));
    return 1;
  }
  void observe(const Observation&) override {}
  void refresh(TimeSec) override {}
  [[nodiscard]] std::string_view name() const override { return "slow"; }

 private:
  int delay_ms_;
};

ServerConfig reactor_config(int workers = 2) {
  ServerConfig config;
  config.reactor_threads = workers;
  return config;
}

/// Serializes a whole frame (header + type + payload) into `out`, so a
/// test can hand the server many frames in a single send_all — the burst
/// arrives within one readiness event and exercises the batch path.
void append_frame(std::vector<std::byte>& out, MsgType type, const WireWriter& w) {
  const auto payload = w.bytes();
  const auto len = static_cast<std::uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::byte>((len >> (8 * i)) & 0xFF));
  }
  out.push_back(static_cast<std::byte>(type));
  out.insert(out.end(), payload.begin(), payload.end());
}

std::vector<std::byte> encode_decision_burst(int count, int id_base) {
  std::vector<std::byte> burst;
  for (int i = 0; i < count; ++i) {
    DecisionRequest req;
    req.call_id = id_base + i;
    req.time = i;
    req.src_as = 1;
    req.dst_as = 2;
    req.options = {0, 1, 2};
    WireWriter w;
    req.encode(w);
    append_frame(burst, MsgType::DecisionRequest, w);
  }
  return burst;
}

[[nodiscard]] std::int64_t counter_value(ControllerServer& server, const std::string& name) {
  return server.telemetry().registry.snapshot().counter_value(name);
}

// --------------------------------------------------------- basic protocol

TEST(Reactor, DecisionReportRefreshRoundTrip) {
  ModuloPolicy policy;
  ControllerServer server(policy, 0, reactor_config());
  server.start();

  ControllerClient client(server.port());
  DecisionRequest req;
  req.call_id = 7;
  req.options = {0, 5, 9};
  EXPECT_EQ(client.request_decision(req), 5);  // 7 % 3 == 1 -> options[1]

  Observation obs;
  obs.id = 7;
  obs.option = 5;
  obs.perf = {120.0, 0.5, 3.0};
  client.report(obs);
  EXPECT_EQ(policy.observed.load(), 1);

  client.refresh(kSecondsPerDay);
  EXPECT_EQ(policy.refreshed.load(), 1);

  const std::string stats = client.get_stats(obs::StatsFormat::Json);
  EXPECT_NE(stats.find("\"rpc.server.decisions\":1"), std::string::npos);

  client.shutdown();
  server.stop();
  EXPECT_EQ(server.decisions_served(), 1);
  EXPECT_EQ(server.reports_received(), 1);
}

TEST(Reactor, ManyConcurrentClients) {
  ModuloPolicy policy;
  ControllerServer server(policy, 0, reactor_config(3));
  server.start();

  constexpr int kClients = 8;
  constexpr int kCallsEach = 50;
  std::atomic<int> ok{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      ControllerClient client(server.port());
      for (int i = 0; i < kCallsEach; ++i) {
        DecisionRequest req;
        req.call_id = c * 1000 + i;
        req.options = {3};
        if (client.request_decision(req) == 3) ++ok;
        Observation obs;
        obs.id = req.call_id;
        obs.option = 3;
        obs.perf = {100.0, 0.5, 2.0};
        client.report(obs);
      }
      client.shutdown();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok.load(), kClients * kCallsEach);
  EXPECT_EQ(policy.observed.load(), kClients * kCallsEach);
  server.stop();
  EXPECT_EQ(server.decisions_served(), kClients * kCallsEach);
}

// ------------------------------------------------------- pipelined batches

TEST(Reactor, PipelinedDecisionsAnswerInOrder) {
  ModuloPolicy policy;
  ControllerServer server(policy, 0, reactor_config());
  server.start();

  constexpr int kFrames = 24;
  TcpConnection conn = TcpConnection::connect_local(server.port());
  conn.send_all(encode_decision_burst(kFrames, 100));

  for (int i = 0; i < kFrames; ++i) {
    Frame reply;
    ASSERT_TRUE(recv_frame(conn, reply));
    ASSERT_EQ(reply.type, static_cast<std::uint8_t>(MsgType::DecisionResponse));
    WireReader r(reply.payload);
    const DecisionResponse resp = DecisionResponse::decode(r);
    // Replies come back in request order with the per-call modulo pick:
    // exactly what the sequential path would have produced.
    EXPECT_EQ(resp.call_id, 100 + i);
    EXPECT_EQ(resp.option, static_cast<OptionId>((100 + i) % 3));
  }
  conn.close();  // let stop() drain instead of waiting out the timeout
  server.stop();
  EXPECT_EQ(server.decisions_served(), kFrames);
}

TEST(Reactor, PipelinedMixedFramesAnswerInOrder) {
  // Decisions interleaved with reports: batching must respect frame order
  // across run boundaries (decision run, report, decision run...).
  ModuloPolicy policy;
  ControllerServer server(policy, 0, reactor_config());
  server.start();

  std::vector<std::byte> burst;
  std::vector<MsgType> expected;
  for (int i = 0; i < 12; ++i) {
    if (i % 4 == 3) {
      ReportMsg msg;
      msg.obs.id = i;
      msg.obs.option = 1;
      msg.obs.perf = {100.0, 0.5, 2.0};
      WireWriter w;
      msg.encode(w);
      append_frame(burst, MsgType::Report, w);
      expected.push_back(MsgType::ReportAck);
    } else {
      DecisionRequest req;
      req.call_id = i;
      req.options = {0, 1};
      WireWriter w;
      req.encode(w);
      append_frame(burst, MsgType::DecisionRequest, w);
      expected.push_back(MsgType::DecisionResponse);
    }
  }
  TcpConnection conn = TcpConnection::connect_local(server.port());
  conn.send_all(burst);
  for (const MsgType want : expected) {
    Frame reply;
    ASSERT_TRUE(recv_frame(conn, reply));
    EXPECT_EQ(reply.type, static_cast<std::uint8_t>(want));
  }
  conn.close();
  server.stop();
  EXPECT_EQ(policy.observed.load(), 3);
}

// ------------------------------------------------------------- shedding

TEST(Reactor, BurstSheddingPreserved) {
  // A pipelined burst decoded from one readiness event must be visible to
  // the inflight cap before any of it is served: some frames get Busy.
  ModuloPolicy policy;
  ServerConfig config = reactor_config();
  config.max_inflight = 2;
  ControllerServer server(policy, 0, config);
  server.start();

  constexpr int kFrames = 128;
  int busy = 0;
  int served = 0;
  // TCP may split a burst across readiness events; retry until a burst
  // lands densely enough to trip the cap (the first almost always does).
  for (int attempt = 0; attempt < 5 && busy == 0; ++attempt) {
    TcpConnection conn = TcpConnection::connect_local(server.port());
    conn.send_all(encode_decision_burst(kFrames, attempt * kFrames));
    for (int i = 0; i < kFrames; ++i) {
      Frame reply;
      ASSERT_TRUE(recv_frame(conn, reply));
      if (reply.type == static_cast<std::uint8_t>(MsgType::Busy)) {
        ++busy;
      } else {
        ASSERT_EQ(reply.type, static_cast<std::uint8_t>(MsgType::DecisionResponse));
        ++served;
      }
    }
  }
  EXPECT_GE(busy, 1);
  EXPECT_EQ(server.busy_rejections(), busy);

  // A polite client (one request at a time) is never shed at this cap.
  ControllerClient client(server.port());
  DecisionRequest req;
  req.call_id = 9999;
  req.options = {0};
  EXPECT_EQ(client.request_decision(req), 0);
  client.shutdown();
  server.stop();
}

TEST(Reactor, ClientDeadlinePreserved) {
  // The client's poll-based response deadline and fallback ladder work
  // unchanged against a reactor server whose policy stalls.
  SlowPolicy policy(400);
  ServerConfig config = reactor_config();
  config.drain_timeout_ms = 200;  // stop() quickly despite the stall
  ControllerServer server(policy, 0, config);
  server.start();

  ClientConfig cc;
  cc.request_timeout_ms = 50;
  cc.max_retries = 1;
  cc.backoff_base_ms = 1;
  cc.backoff_max_ms = 2;
  cc.fallback_direct = true;
  ControllerClient client(server.port(), cc);
  DecisionRequest req;
  req.call_id = 1;
  req.options = {0, 1};
  // Every attempt times out, so the deadline ladder ends in the direct
  // fallback — never a hang.
  EXPECT_EQ(client.request_decision(req), RelayOptionTable::direct_id());
  EXPECT_GE(client.retries(), 1);
  server.stop();
}

// ------------------------------------------------------ errors and drain

TEST(Reactor, OversizedFrameGetsErrorAndClose) {
  ModuloPolicy policy;
  ControllerServer server(policy, 0, reactor_config());
  server.start();

  TcpConnection conn = TcpConnection::connect_local(server.port());
  // Header declaring a payload over kMaxPayload: decode-level violation.
  const std::uint32_t len = kMaxPayload + 1;
  std::vector<std::byte> bad;
  for (int i = 0; i < 4; ++i) bad.push_back(static_cast<std::byte>((len >> (8 * i)) & 0xFF));
  bad.push_back(static_cast<std::byte>(MsgType::DecisionRequest));
  conn.send_all(bad);

  Frame reply;
  ASSERT_TRUE(recv_frame(conn, reply));
  EXPECT_EQ(reply.type, static_cast<std::uint8_t>(MsgType::Error));
  EXPECT_FALSE(recv_frame(conn, reply));  // server closed the connection
  EXPECT_GE(server.protocol_errors(), 1);

  // The reactor keeps serving other clients afterwards.
  ControllerClient client(server.port());
  DecisionRequest req;
  req.call_id = 3;
  req.options = {0};
  EXPECT_EQ(client.request_decision(req), 0);
  client.shutdown();
  server.stop();
}

TEST(Reactor, UnknownTypeGetsErrorAndClose) {
  ModuloPolicy policy;
  ControllerServer server(policy, 0, reactor_config());
  server.start();

  TcpConnection conn = TcpConnection::connect_local(server.port());
  send_frame(conn, 0x7F, {});
  Frame reply;
  ASSERT_TRUE(recv_frame(conn, reply));
  EXPECT_EQ(reply.type, static_cast<std::uint8_t>(MsgType::Error));
  EXPECT_FALSE(recv_frame(conn, reply));
  server.stop();
  EXPECT_GE(server.protocol_errors(), 1);
}

TEST(Reactor, GracefulDrainClosesCleanly) {
  ModuloPolicy policy;
  ControllerServer server(policy, 0, reactor_config());
  server.start();
  {
    ControllerClient client(server.port());
    DecisionRequest req;
    req.call_id = 1;
    req.options = {0};
    EXPECT_EQ(client.request_decision(req), 0);
    client.shutdown();
  }
  server.stop();
  EXPECT_EQ(counter_value(server, "rpc.server.drain_forced_closes"), 0);
}

TEST(Reactor, DrainForceClosesStragglers) {
  ModuloPolicy policy;
  ServerConfig config = reactor_config();
  config.drain_timeout_ms = 100;
  ControllerServer server(policy, 0, config);
  server.start();

  // Two clients that connect (one transacts) and then sit on the line.
  TcpConnection idle1 = TcpConnection::connect_local(server.port());
  TcpConnection idle2 = TcpConnection::connect_local(server.port());
  idle1.send_all(encode_decision_burst(1, 1));
  Frame reply;
  ASSERT_TRUE(recv_frame(idle1, reply));

  server.stop();  // must return despite the open connections
  EXPECT_GE(counter_value(server, "rpc.server.drain_forced_closes"), 2);
  EXPECT_EQ(server.active_handlers(), 0u);
}

TEST(Reactor, ActiveConnectionsTracked) {
  ModuloPolicy policy;
  ControllerServer server(policy, 0, reactor_config());
  server.start();

  auto wait_for_count = [&](std::size_t want) {
    for (int i = 0; i < 200 && server.active_handlers() != want; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return server.active_handlers();
  };

  {
    TcpConnection a = TcpConnection::connect_local(server.port());
    TcpConnection b = TcpConnection::connect_local(server.port());
    TcpConnection c = TcpConnection::connect_local(server.port());
    EXPECT_EQ(wait_for_count(3), 3u);
  }
  EXPECT_EQ(wait_for_count(0), 0u);
  server.stop();
}

TEST(Reactor, StopIsIdempotentAndRestartless) {
  ModuloPolicy policy;
  ControllerServer server(policy, 0, reactor_config());
  server.start();
  server.stop();
  server.stop();  // second stop must be harmless
}

// ----------------------------------------------------------- TSan hammer

TEST(Reactor, ConcurrentHammer) {
  // All reactor workers live at once: per-client sequential traffic plus
  // raw pipelined bursts (the choose_batch path) plus periodic refreshes
  // and stats queries.  Run under TSan in CI.
  ModuloPolicy policy;
  ControllerServer server(policy, 0, reactor_config(4));
  server.start();

  constexpr int kClients = 6;
  constexpr int kCallsEach = 120;
  std::atomic<int> ok{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients + 2);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      ControllerClient client(server.port());
      for (int i = 0; i < kCallsEach; ++i) {
        DecisionRequest req;
        req.call_id = c * 10'000 + i;
        req.options = {0, 1, 2};
        const OptionId pick = client.request_decision(req);
        if (pick == static_cast<OptionId>(req.call_id % 3)) ++ok;
        Observation obs;
        obs.id = req.call_id;
        obs.option = pick;
        obs.perf = {100.0, 0.5, 2.0};
        client.report(obs);
        if (i % 40 == 0) (void)client.get_stats(obs::StatsFormat::Json);
      }
      client.shutdown();
    });
  }
  // Two pipelining connections keep the batch path hot in parallel.
  for (int p = 0; p < 2; ++p) {
    threads.emplace_back([&, p] {
      for (int round = 0; round < 6; ++round) {
        TcpConnection conn = TcpConnection::connect_local(server.port());
        constexpr int kBurst = 32;
        conn.send_all(encode_decision_burst(kBurst, 1'000'000 + p * 100'000 + round * kBurst));
        for (int i = 0; i < kBurst; ++i) {
          Frame reply;
          ASSERT_TRUE(recv_frame(conn, reply));
          ASSERT_EQ(reply.type, static_cast<std::uint8_t>(MsgType::DecisionResponse));
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok.load(), kClients * kCallsEach);
  EXPECT_EQ(policy.observed.load(), kClients * kCallsEach);
  server.stop();
  EXPECT_EQ(server.decisions_served(),
            static_cast<std::int64_t>(kClients) * kCallsEach + 2 * 6 * 32);
}

// --------------------------------------------- choose_batch parity (core)

TEST(Reactor, ViaPolicyChooseBatchMatchesSequential) {
  // The batched decision path pins one model snapshot for a whole run;
  // decisions (including exploration RNG draws) must match the sequential
  // path bit for bit.
  RelayOptionTable options_a;
  RelayOptionTable options_b;
  const OptionId bounce_a = options_a.intern_bounce(0);
  (void)options_b.intern_bounce(0);
  (void)options_a.intern_bounce(1);
  (void)options_b.intern_bounce(1);
  ViaConfig config;
  config.epsilon = 0.2;  // exercise exploration RNG ordering too
  auto backbone = [](RelayId, RelayId) { return PathPerformance{}; };
  ViaPolicy sequential(options_a, backbone, config);
  ViaPolicy batched(options_b, backbone, config);

  const std::vector<OptionId> candidates = {RelayOptionTable::direct_id(), bounce_a,
                                            bounce_a + 1};
  for (int i = 0; i < 16; ++i) {
    Observation o;
    o.src_as = 1;
    o.dst_as = 2;
    o.option = candidates[static_cast<std::size_t>(i) % candidates.size()];
    o.perf = {100.0 + i, 0.5, 3.0};
    sequential.observe(o);
    batched.observe(o);
  }
  sequential.refresh(kSecondsPerDay);
  batched.refresh(kSecondsPerDay);

  constexpr std::size_t kCalls = 64;
  std::vector<CallContext> ctxs(kCalls);
  for (std::size_t i = 0; i < kCalls; ++i) {
    ctxs[i].id = static_cast<CallId>(i + 1);
    ctxs[i].time = static_cast<TimeSec>(i);
    ctxs[i].src_as = 1;
    ctxs[i].dst_as = 2;
    ctxs[i].key_src = 1;
    ctxs[i].key_dst = 2;
    ctxs[i].options = candidates;
  }
  std::vector<OptionId> expect(kCalls);
  for (std::size_t i = 0; i < kCalls; ++i) expect[i] = sequential.choose(ctxs[i]);
  std::vector<OptionId> got(kCalls);
  batched.choose_batch(ctxs, got);
  EXPECT_EQ(got, expect);
}

// ------------------------------------------- backend-parameterized (§6j)

/// Runs a case against both event-driven backends.  The io_uring variant
/// SKIPs explicitly (never silently passes) when the kernel can't run it.
class BackendReactor : public ::testing::TestWithParam<ServingBackend> {
 protected:
  void SetUp() override {
    if (GetParam() == ServingBackend::kUring && !UringReactor::supported()) {
      GTEST_SKIP() << "io_uring unsupported on this kernel";
    }
  }

  [[nodiscard]] ServerConfig config(int workers = 2) const {
    ServerConfig c;
    c.backend = GetParam();
    c.reactor_threads = workers;
    return c;
  }
};

INSTANTIATE_TEST_SUITE_P(Backends, BackendReactor,
                         ::testing::Values(ServingBackend::kEpoll, ServingBackend::kUring),
                         [](const auto& info) {
                           return std::string(serving_backend_name(info.param));
                         });

TEST_P(BackendReactor, ActiveBackendMatchesRequest) {
  ModuloPolicy policy;
  ControllerServer server(policy, 0, config());
  server.start();
  EXPECT_EQ(server.serving_backend(), GetParam());
  ControllerClient client(server.port());
  DecisionRequest req;
  req.call_id = 4;
  req.options = {0, 1};
  EXPECT_EQ(client.request_decision(req), 0);  // 4 % 2
  client.shutdown();
  server.stop();
}

TEST_P(BackendReactor, PipelinedBurstAnswersInOrder) {
  ModuloPolicy policy;
  ControllerServer server(policy, 0, config());
  server.start();

  constexpr int kFrames = 64;
  TcpConnection conn = TcpConnection::connect_local(server.port());
  conn.send_all(encode_decision_burst(kFrames, 500));
  for (int i = 0; i < kFrames; ++i) {
    Frame reply;
    ASSERT_TRUE(recv_frame(conn, reply));
    ASSERT_EQ(reply.type, static_cast<std::uint8_t>(MsgType::DecisionResponse));
    WireReader r(reply.payload);
    const DecisionResponse resp = DecisionResponse::decode(r);
    EXPECT_EQ(resp.call_id, 500 + i);
    EXPECT_EQ(resp.option, static_cast<OptionId>((500 + i) % 3));
  }
  conn.close();
  server.stop();
  EXPECT_EQ(server.decisions_served(), kFrames);
}

TEST_P(BackendReactor, ProtocolErrorRepliesAndCloses) {
  ModuloPolicy policy;
  ControllerServer server(policy, 0, config());
  server.start();

  TcpConnection conn = TcpConnection::connect_local(server.port());
  send_frame(conn, 0x7F, {});
  Frame reply;
  ASSERT_TRUE(recv_frame(conn, reply));
  EXPECT_EQ(reply.type, static_cast<std::uint8_t>(MsgType::Error));
  EXPECT_FALSE(recv_frame(conn, reply));
  server.stop();
  EXPECT_GE(server.protocol_errors(), 1);
}

TEST_P(BackendReactor, BackpressurePauseResumeRoundTrip) {
  // A pipelined flood whose replies outrun the (unread) socket must pause
  // the connection at the write cap, stop reading, then resume and serve
  // every frame in order once the client finally drains.
  ModuloPolicy policy;
  ServerConfig cfg = config();
  cfg.write_buffer_cap = 128 * 1024;
  ControllerServer server(policy, 0, cfg);
  server.start();

  // ~5 MB of replies: more than sndbuf autotuning (4 MB ceiling) plus the
  // client's receive window can absorb, so the write queue must reach the
  // cap and stay parked there until we start reading.
  constexpr int kFrames = 300'000;
  TcpConnection conn = TcpConnection::connect_local(server.port());
  conn.set_recv_timeout_ms(30'000);
  // The sender must be a separate thread: once the server pauses the
  // connection it stops reading, so a large enough burst blocks send_all
  // until this thread starts consuming replies.
  std::thread sender([&] { conn.send_all(encode_decision_burst(kFrames, 0)); });

  // With the client not reading, the reply flood must reach a stable
  // paused state: the connection parked at the cap with the socket full.
  bool paused = false;
  for (int i = 0; i < 2000 && !paused; ++i) {
    paused = server.backpressure_paused_conns() == 1 &&
             server.backpressure_queued_bytes() >= cfg.write_buffer_cap / 2;
    if (!paused) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(paused);
  EXPECT_GE(server.backpressure_pauses_total(), 1u);

  for (int i = 0; i < kFrames; ++i) {
    Frame reply;
    ASSERT_TRUE(recv_frame(conn, reply));
    ASSERT_EQ(reply.type, static_cast<std::uint8_t>(MsgType::DecisionResponse));
    WireReader r(reply.payload);
    EXPECT_EQ(DecisionResponse::decode(r).call_id, i);
  }
  sender.join();

  // Fully drained: the gauge returns to zero and the peak stayed bounded
  // by the cap plus one in-flight reply batch.
  for (int i = 0; i < 2000 && server.backpressure_paused_conns() != 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(server.backpressure_paused_conns(), 0u);
  EXPECT_LE(server.peak_conn_queued_bytes(), cfg.write_buffer_cap + 4096);
  conn.close();
  server.stop();
  EXPECT_EQ(server.decisions_served(), kFrames);
}

TEST_P(BackendReactor, DrainedWhileAggregateHighResumesViaSweep) {
  // Regression: a connection that pauses while its socket still holds
  // bytes gets no sweep-list entry at pause time.  If its socket then
  // fully drains while the worker aggregate is still above low water, the
  // final EPOLLOUT / send CQE must park it on the sweep list — otherwise
  // it has zero event interest, sits on no list, and is stranded paused
  // forever even after the aggregate drains.
  ModuloPolicy policy;
  ServerConfig cfg = config(1);  // one worker: both connections share an aggregate
  cfg.write_buffer_cap = 128 * 1024;
  cfg.worker_write_cap = 192 * 1024;
  ControllerServer server(policy, 0, cfg);
  server.start();

  // ~5 MB of replies per connection: more than socket buffering absorbs,
  // so both write queues climb until backpressure pauses both connections
  // with their sockets full (= no sweep-list entry at pause time).
  constexpr int kFrames = 300'000;
  TcpConnection conn_hold = TcpConnection::connect_local(server.port());
  TcpConnection conn_victim = TcpConnection::connect_local(server.port());
  conn_hold.set_recv_timeout_ms(30'000);
  conn_victim.set_recv_timeout_ms(30'000);

  // Flood the holdout first so it deterministically parks at its
  // per-connection cap (128 KB — above the 96 KB aggregate low-water
  // mark) before the victim starts; the victim then pauses on the
  // aggregate cap with its socket full.
  auto send_flood = [](TcpConnection& conn) {
    try {
      conn.send_all(encode_decision_burst(kFrames, 0));
    } catch (const std::exception&) {
      // Only on the failure path: the teardown shutdown() below resets a
      // sender left blocked on a stranded connection.
    }
  };
  // A skip, not a failure, when the floods never pause: under sanitizer
  // slowdowns socket autotuning can absorb the whole burst, and the test
  // cannot reach the stranding window it exists to pin.  Joins first so
  // the early return never destroys a joinable thread.
  auto bail = [&](std::vector<std::thread*> senders, const char* what) {
    (void)::shutdown(conn_hold.fd(), SHUT_RDWR);
    (void)::shutdown(conn_victim.fd(), SHUT_RDWR);
    for (std::thread* t : senders) t->join();
    server.stop();
    return what;
  };

  std::thread send_hold([&] { send_flood(conn_hold); });
  bool hold_paused = false;
  for (int i = 0; i < 4000 && !hold_paused; ++i) {
    hold_paused = server.backpressure_paused_conns() == 1 &&
                  server.backpressure_queued_bytes() >= cfg.write_buffer_cap;
    if (!hold_paused) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  if (!hold_paused) {
    GTEST_SKIP() << bail({&send_hold}, "holdout never paused at its write cap");
  }

  std::thread send_victim([&] { send_flood(conn_victim); });
  bool both_paused = false;
  for (int i = 0; i < 4000 && !both_paused; ++i) {
    both_paused = server.backpressure_paused_conns() == 2;
    if (!both_paused) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  if (!both_paused) {
    GTEST_SKIP() << bail({&send_hold, &send_victim}, "victim never paused on the aggregate cap");
  }

  // Drain the victim only.  Its server-side queue empties while the
  // holdout still parks >= worker_write_cap/2 bytes, so the victim cannot
  // resume yet — this is exactly the stranding window.
  auto reader = [](TcpConnection& conn, int want) {
    int got = 0;
    try {
      Frame reply;
      while (got < want && recv_frame(conn, reply)) {
        if (reply.type != static_cast<std::uint8_t>(MsgType::DecisionResponse)) break;
        ++got;
      }
    } catch (const std::exception&) {
      // Timeout or reset: `got` stalls and the EXPECT below reports it.
    }
    return got;
  };
  int victim_got = 0;
  std::thread read_victim([&] { victim_got = reader(conn_victim, kFrames); });

  // Wait until only the holdout's parked bytes remain queued (the victim
  // has fully drained server-side) while both are still paused.
  bool victim_drained = false;
  for (int i = 0; i < 4000 && !victim_drained; ++i) {
    victim_drained = server.backpressure_paused_conns() == 2 &&
                     server.backpressure_queued_bytes() <= cfg.write_buffer_cap + 32 * 1024;
    if (!victim_drained) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(victim_drained);

  // Now drain the holdout.  The aggregate falls under low water and the
  // sweep must revive the victim: every reply on both connections lands.
  int hold_got = 0;
  std::thread read_hold([&] { hold_got = reader(conn_hold, kFrames); });
  read_hold.join();
  read_victim.join();
  EXPECT_EQ(hold_got, kFrames);
  EXPECT_EQ(victim_got, kFrames);
  if (hold_got < kFrames || victim_got < kFrames) {
    // A stranded connection leaves its sender blocked in send_all forever
    // (the server never reads again); reset both streams so the joins
    // below cannot hang the suite.
    (void)::shutdown(conn_hold.fd(), SHUT_RDWR);
    (void)::shutdown(conn_victim.fd(), SHUT_RDWR);
  }
  send_hold.join();
  send_victim.join();

  for (int i = 0; i < 2000 && server.backpressure_paused_conns() != 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(server.backpressure_paused_conns(), 0u);
  conn_hold.close();
  conn_victim.close();
  server.stop();
  EXPECT_EQ(server.decisions_served(), 2 * kFrames);
}

TEST_P(BackendReactor, ForcedCloseWithPendingWrites) {
  // stop() during a pause: the connection still holds queued replies and
  // undispatched frames.  The drain timeout must force it shut without
  // leaking the inflight accounting or wedging stop().
  ModuloPolicy policy;
  ServerConfig cfg = config();
  cfg.write_buffer_cap = 4 * 1024;
  cfg.drain_timeout_ms = 200;
  ControllerServer server(policy, 0, cfg);
  server.start();

  constexpr int kFrames = 50'000;
  TcpConnection conn = TcpConnection::connect_local(server.port());
  std::thread sender([&] {
    try {
      conn.send_all(encode_decision_burst(kFrames, 0));
    } catch (const std::exception&) {
      // Expected: the forced close resets the stream mid-send.
    }
  });
  for (int i = 0; i < 2000 && server.backpressure_pauses_total() < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(server.backpressure_pauses_total(), 1u);

  server.stop();  // must return despite the paused, reply-laden connection
  EXPECT_GE(counter_value(server, "rpc.server.drain_forced_closes"), 1);
  EXPECT_EQ(server.active_handlers(), 0u);
  // The forced close resets the stream, so the sender's send_all fails and
  // returns; only then is the client fd safe to close.
  sender.join();
  conn.close();
}

TEST_P(BackendReactor, LeastConnectionsPinningBalancesWorkers) {
  ModuloPolicy policy;
  ControllerServer server(policy, 0, config(2));
  server.start();

  auto wait_for_total = [&](std::size_t want) {
    for (int i = 0; i < 400 && server.active_handlers() != want; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return server.active_handlers();
  };
  auto counts = [&] { return server.reactor_worker_connections(); };

  // Sequential connects land round-robin under least-connections (each
  // accept sees the previously charged loads): A→w0, B→w1, C→w0, D→w1.
  std::vector<TcpConnection> conns;
  for (int i = 0; i < 4; ++i) {
    conns.push_back(TcpConnection::connect_local(server.port()));
    ASSERT_EQ(wait_for_total(static_cast<std::size_t>(i) + 1), static_cast<std::size_t>(i) + 1);
  }
  auto c = counts();
  ASSERT_EQ(c.size(), 2u);
  EXPECT_EQ(c[0], 2u);
  EXPECT_EQ(c[1], 2u);

  // Close worker 0's pair (A and C); the next accepts must refill the
  // emptier worker first instead of whatever fd parity dictates.
  conns[0].close();
  conns[2].close();
  ASSERT_EQ(wait_for_total(2), 2u);
  c = counts();
  EXPECT_EQ(std::max(c[0], c[1]), 2u);
  EXPECT_EQ(std::min(c[0], c[1]), 0u);

  conns.push_back(TcpConnection::connect_local(server.port()));
  conns.push_back(TcpConnection::connect_local(server.port()));
  ASSERT_EQ(wait_for_total(4), 4u);
  c = counts();
  EXPECT_EQ(c[0], 2u);
  EXPECT_EQ(c[1], 2u);

  conns.clear();
  server.stop();
}

TEST(BackendParity, EpollAndUringProduceIdenticalReplyBytes) {
  // The tentpole invariant: both backends sit behind the same
  // dispatch_frame seam, so one pipelined mixed workload must produce
  // byte-identical reply streams.
  if (!UringReactor::supported()) {
    GTEST_SKIP() << "io_uring unsupported on this kernel";
  }
  auto run_backend = [](ServingBackend backend) {
    ModuloPolicy policy;
    ServerConfig cfg;
    cfg.backend = backend;
    cfg.reactor_threads = 2;
    ControllerServer server(policy, 0, cfg);
    server.start();

    std::vector<std::byte> burst;
    int expected_replies = 0;
    for (int i = 0; i < 48; ++i) {
      if (i % 5 == 4) {
        ReportMsg msg;
        msg.obs.id = i;
        msg.obs.option = 1;
        msg.obs.perf = {100.0 + i, 0.5, 2.0};
        WireWriter w;
        msg.encode(w);
        append_frame(burst, MsgType::Report, w);
      } else {
        DecisionRequest req;
        req.call_id = i;
        req.options = {0, 1, 2};
        WireWriter w;
        req.encode(w);
        append_frame(burst, MsgType::DecisionRequest, w);
      }
      ++expected_replies;
    }
    TcpConnection conn = TcpConnection::connect_local(server.port());
    conn.set_recv_timeout_ms(10'000);
    conn.send_all(burst);

    std::vector<std::byte> replies;
    for (int i = 0; i < expected_replies; ++i) {
      Frame reply;
      EXPECT_TRUE(recv_frame(conn, reply));
      replies.push_back(static_cast<std::byte>(reply.type));
      const auto len = static_cast<std::uint32_t>(reply.payload.size());
      for (int b = 0; b < 4; ++b) {
        replies.push_back(static_cast<std::byte>((len >> (8 * b)) & 0xFF));
      }
      replies.insert(replies.end(), reply.payload.begin(), reply.payload.end());
    }
    conn.close();
    server.stop();
    return replies;
  };

  const auto epoll_bytes = run_backend(ServingBackend::kEpoll);
  const auto uring_bytes = run_backend(ServingBackend::kUring);
  EXPECT_EQ(epoll_bytes, uring_bytes);
}

TEST(BackendParity, UringFallsBackToEpollWhenUnsupported) {
  // VIA_NO_URING forces supported() == false: the server must degrade to
  // epoll, count the fallback, and keep serving.
  ::setenv("VIA_NO_URING", "1", 1);
  ModuloPolicy policy;
  ServerConfig cfg;
  cfg.backend = ServingBackend::kUring;
  cfg.reactor_threads = 2;
  ControllerServer server(policy, 0, cfg);
  server.start();
  ::unsetenv("VIA_NO_URING");

  EXPECT_EQ(server.serving_backend(), ServingBackend::kEpoll);
  EXPECT_EQ(counter_value(server, "rpc.server.uring_fallbacks"), 1);
  ControllerClient client(server.port());
  DecisionRequest req;
  req.call_id = 2;
  req.options = {0, 1};
  EXPECT_EQ(client.request_decision(req), 0);
  client.shutdown();
  server.stop();
}

}  // namespace
}  // namespace via
