#include "trace/stream.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "core/history.h"
#include "trace/generator.h"
#include "util/flat_map.h"

namespace via {
namespace {

bool same_arrival(const CallArrival& a, const CallArrival& b) {
  return a.id == b.id && a.time == b.time && a.src_as == b.src_as && a.dst_as == b.dst_as &&
         a.src_country == b.src_country && a.dst_country == b.dst_country &&
         a.src_prefix == b.src_prefix && a.dst_prefix == b.dst_prefix &&
         a.src_user == b.src_user && a.dst_user == b.dst_user &&
         a.duration_min == b.duration_min;
}

std::vector<CallArrival> drain(ArrivalStream& stream) {
  std::vector<CallArrival> out;
  CallArrival a;
  while (stream.next(a)) out.push_back(a);
  return out;
}

StreamTraceConfig small_config() {
  StreamTraceConfig c;
  c.total_calls = 20'000;
  c.days = 5;
  c.active_pairs = 500;
  c.seed = 11;
  return c;
}

TEST(SpanStream, CursorAndReset) {
  std::vector<CallArrival> arrivals(3);
  arrivals[0].id = 1;
  arrivals[1].id = 2;
  arrivals[2].id = 3;
  SpanStream stream(arrivals);
  EXPECT_EQ(stream.total_calls(), 3);
  auto first = drain(stream);
  ASSERT_EQ(first.size(), 3u);
  CallArrival a;
  EXPECT_FALSE(stream.next(a));
  stream.reset();
  auto second = drain(stream);
  ASSERT_EQ(second.size(), 3u);
  EXPECT_EQ(second[1].id, 2);
}

TEST(MaterializedStream, CollectMovesVectorOut) {
  std::vector<CallArrival> arrivals(4);
  for (int i = 0; i < 4; ++i) arrivals[static_cast<std::size_t>(i)].id = i + 1;
  MaterializedStream stream(std::move(arrivals));
  const auto collected = stream.collect();
  EXPECT_EQ(collected.size(), 4u);
  // collect() surrendered the storage; the stream is empty afterwards.
  CallArrival a;
  EXPECT_FALSE(stream.next(a));
}

TEST(SyntheticStream, ExactCountSortedAndUniqueIds) {
  SyntheticArrivalStream stream(small_config());
  const auto arrivals = drain(stream);
  ASSERT_EQ(static_cast<std::int64_t>(arrivals.size()), stream.total_calls());
  EXPECT_TRUE(std::is_sorted(arrivals.begin(), arrivals.end(),
                             [](const CallArrival& a, const CallArrival& b) {
                               return a.time < b.time;
                             }));
  std::set<CallId> ids;
  for (const auto& a : arrivals) ids.insert(a.id);
  EXPECT_EQ(ids.size(), arrivals.size());
  for (const auto& a : arrivals) {
    EXPECT_GE(a.time, 0);
    EXPECT_LT(a.day(), small_config().days);
  }
}

TEST(SyntheticStream, ResetReplaysIdenticalSequence) {
  SyntheticArrivalStream stream(small_config());
  const auto first = drain(stream);
  stream.reset();
  const auto second = drain(stream);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    ASSERT_TRUE(same_arrival(first[i], second[i])) << "arrival " << i << " differs";
  }
}

TEST(SyntheticStream, CollectEqualsNextLoop) {
  SyntheticArrivalStream a(small_config());
  SyntheticArrivalStream b(small_config());
  const auto collected = a.collect();
  const auto drained = drain(b);
  ASSERT_EQ(collected.size(), drained.size());
  for (std::size_t i = 0; i < collected.size(); ++i) {
    ASSERT_TRUE(same_arrival(collected[i], drained[i]));
  }
}

TEST(SyntheticStream, DeterministicPerSeedAndSeedSensitive) {
  auto config = small_config();
  SyntheticArrivalStream a(config);
  SyntheticArrivalStream b(config);
  const auto ra = drain(a);
  const auto rb = drain(b);
  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t i = 0; i < ra.size(); ++i) ASSERT_TRUE(same_arrival(ra[i], rb[i]));

  config.seed = 12;
  SyntheticArrivalStream c(config);
  const auto rc = drain(c);
  bool any_differs = false;
  for (std::size_t i = 0; i < std::min(ra.size(), rc.size()); ++i) {
    if (!same_arrival(ra[i], rc[i])) {
      any_differs = true;
      break;
    }
  }
  EXPECT_TRUE(any_differs);
}

TEST(SyntheticStream, EndpointsFitHistoryPathKeys) {
  // 1M active pairs must still produce endpoint group ids far below the
  // HistoryWindow 24-bit path-key bound (the whole point of enumerating
  // the smallest endpoint universe).
  StreamTraceConfig config;
  config.total_calls = 1000;
  config.active_pairs = 1'000'000;
  SyntheticArrivalStream stream(config);
  EXPECT_LT(stream.num_endpoints(), 1 << 24);
  CallArrival a;
  while (stream.next(a)) {
    ASSERT_GE(a.src_as, 0);
    ASSERT_GE(a.dst_as, 0);
    ASSERT_LT(a.src_as, stream.num_endpoints());
    ASSERT_LT(a.dst_as, stream.num_endpoints());
    ASSERT_TRUE(HistoryWindow::path_key_fits(a.pair_key(), 0));
  }
}

TEST(SyntheticStream, BoundedStateIndependentOfCallCount) {
  auto small = small_config();
  auto large = small_config();
  large.total_calls = 100 * small.total_calls;
  SyntheticArrivalStream s(small);
  SyntheticArrivalStream l(large);
  // Generation state is O(active_pairs): 100x the calls, same footprint.
  EXPECT_EQ(s.approx_bytes(), l.approx_bytes());
}

TEST(SyntheticStream, PairVolumeIsSkewed) {
  SyntheticArrivalStream stream(small_config());
  FlatMap<std::int64_t> per_pair;
  CallArrival a;
  while (stream.next(a)) ++per_pair[a.pair_key()];
  std::int64_t max_count = 0;
  per_pair.for_each([&](std::uint64_t, const std::int64_t& n) {
    max_count = std::max(max_count, n);
  });
  const double mean =
      static_cast<double>(small_config().total_calls) / static_cast<double>(per_pair.size());
  // Zipf 0.9 over 500 pairs: the hottest pair carries far more than the mean.
  EXPECT_GT(static_cast<double>(max_count), 5.0 * mean);
}

TEST(TraceGeneratorStream, StreamCollectMatchesGenerateArrivals) {
  World world({.num_ases = 60, .num_relays = 8, .seed = 31});
  GroundTruth gt(world);
  TraceConfig config;
  config.days = 6;
  config.total_calls = 30'000;
  config.active_pairs = 200;
  config.seed = 7;

  TraceGenerator gen_a(gt, config);
  TraceGenerator gen_b(gt, config);
  const auto legacy = gen_a.generate_arrivals();
  auto stream = gen_b.stream();
  EXPECT_EQ(stream->total_calls(), static_cast<std::int64_t>(legacy.size()));
  const auto streamed = drain(*stream);
  ASSERT_EQ(streamed.size(), legacy.size());
  for (std::size_t i = 0; i < legacy.size(); ++i) {
    ASSERT_TRUE(same_arrival(legacy[i], streamed[i])) << "arrival " << i << " differs";
  }
}

}  // namespace
}  // namespace via
