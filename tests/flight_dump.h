// Test-failure forensics: when the VIA_FLIGHT_DUMP environment variable
// names a directory and any test in the binary fails, dump the process-wide
// flight recorder (JSONL) and span buffer (Chrome trace JSON) there so a
// red chaos/fault run in CI leaves behind the story of what happened.
// Include this header and invoke VIA_REGISTER_FLIGHT_DUMP("binary-stem")
// once at namespace scope; it registers a gtest global environment, so it
// composes with the stock gtest_main.
#pragma once

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <string>
#include <utility>

#include "obs/flight_recorder.h"
#include "obs/span.h"

namespace via::testsupport {

class FlightDumpEnvironment : public ::testing::Environment {
 public:
  explicit FlightDumpEnvironment(std::string stem) : stem_(std::move(stem)) {}

  void TearDown() override {
    const char* dir = std::getenv("VIA_FLIGHT_DUMP");
    if (dir == nullptr || dir[0] == '\0') return;
    if (::testing::UnitTest::GetInstance()->Passed()) return;
    const std::string base = std::string(dir) + "/" + stem_;
    {
      std::ofstream out(base + ".flight.jsonl");
      obs::FlightRecorder::process().export_jsonl(out);
    }
    {
      std::ofstream out(base + ".trace.json");
      const auto spans = obs::SpanBuffer::process().snapshot();
      obs::export_chrome_trace(spans, out);
    }
  }

 private:
  std::string stem_;
};

inline ::testing::Environment* register_flight_dump(std::string stem) {
  return ::testing::AddGlobalTestEnvironment(new FlightDumpEnvironment(std::move(stem)));
}

}  // namespace via::testsupport

#define VIA_REGISTER_FLIGHT_DUMP(stem)                           \
  static ::testing::Environment* const via_flight_dump_env_ = \
      ::via::testsupport::register_flight_dump(stem)
