#include "core/predictor.h"

#include <gtest/gtest.h>

#include "common/linearize.h"

namespace via {
namespace {

class PredictorTest : public ::testing::Test {
 protected:
  PredictorTest() {
    bounce0_ = options_.intern_bounce(0);
    backbone_ = [](RelayId, RelayId) { return PathPerformance{10.0, 0.01, 0.2}; };
  }

  void add_obs(HistoryWindow& w, AsId s, AsId d, OptionId opt, double rtt, int copies) {
    for (int i = 0; i < copies; ++i) {
      Observation o;
      o.src_as = s;
      o.dst_as = d;
      o.option = opt;
      o.perf = {rtt + 0.5 * i, 0.5, 3.0};  // slight spread for a finite SEM
      w.add(o);
    }
  }

  RelayOptionTable options_;
  OptionId bounce0_ = kInvalidOption;
  BackboneFn backbone_;
};

TEST_F(PredictorTest, InvalidBeforeTraining) {
  const Predictor p(options_, backbone_);
  EXPECT_FALSE(p.trained());
  EXPECT_FALSE(p.predict(1, 2, 0, Metric::Rtt).valid);
}

TEST_F(PredictorTest, EmpiricalPredictionFromOwnHistory) {
  HistoryWindow w(&options_);
  add_obs(w, 1, 2, RelayOptionTable::direct_id(), 100.0, 10);
  Predictor p(options_, backbone_);
  p.train(w);
  const Prediction pred = p.predict(1, 2, RelayOptionTable::direct_id(), Metric::Rtt);
  ASSERT_TRUE(pred.valid);
  EXPECT_EQ(pred.source, Prediction::Source::Empirical);
  EXPECT_NEAR(pred.mean, 102.25, 1e-9);
  EXPECT_LT(pred.lower, pred.mean);
  EXPECT_GT(pred.upper, pred.mean);
  EXPECT_NEAR(pred.upper - pred.mean, 1.96 * pred.sem, 1e-9);
}

TEST_F(PredictorTest, TooFewSamplesFallsThrough) {
  HistoryWindow w(&options_);
  add_obs(w, 1, 2, RelayOptionTable::direct_id(), 100.0, 2);  // below default min of 3
  Predictor p(options_, backbone_);
  p.train(w);
  EXPECT_FALSE(p.predict(1, 2, RelayOptionTable::direct_id(), Metric::Rtt).valid);
}

TEST_F(PredictorTest, TomographyFillsHoles) {
  HistoryWindow w(&options_);
  // Bounce paths covering segments (1,r0), (2,r0), (3,r0) — but the pair
  // (2,3) itself never carried a call.
  add_obs(w, 1, 2, bounce0_, 100.0, 8);
  add_obs(w, 1, 3, bounce0_, 120.0, 8);
  add_obs(w, 2, 3, RelayOptionTable::direct_id(), 500.0, 8);  // direct only
  Predictor p(options_, backbone_);
  p.train(w);

  const Prediction pred = p.predict(2, 3, bounce0_, Metric::Rtt);
  ASSERT_TRUE(pred.valid);
  EXPECT_EQ(pred.source, Prediction::Source::Tomography);
  EXPECT_GT(pred.mean, 0.0);
  EXPECT_LE(pred.lower, pred.mean);
  EXPECT_GE(pred.upper, pred.mean);
}

TEST_F(PredictorTest, EmpiricalPreferredOverTomography) {
  HistoryWindow w(&options_);
  add_obs(w, 1, 2, bounce0_, 100.0, 8);
  add_obs(w, 1, 3, bounce0_, 120.0, 8);
  add_obs(w, 2, 3, bounce0_, 777.0, 8);  // direct evidence on the pair itself
  Predictor p(options_, backbone_);
  p.train(w);
  const Prediction pred = p.predict(2, 3, bounce0_, Metric::Rtt);
  ASSERT_TRUE(pred.valid);
  EXPECT_EQ(pred.source, Prediction::Source::Empirical);
  EXPECT_NEAR(pred.mean, 777.0 + 0.5 * 3.5, 1e-9);
}

TEST_F(PredictorTest, TomographyDisabledByConfig) {
  HistoryWindow w(&options_);
  add_obs(w, 1, 2, bounce0_, 100.0, 8);
  add_obs(w, 1, 3, bounce0_, 120.0, 8);
  PredictorConfig config;
  config.use_tomography = false;
  Predictor p(options_, backbone_, config);
  p.train(w);
  EXPECT_FALSE(p.predict(2, 3, bounce0_, Metric::Rtt).valid);
}

TEST_F(PredictorTest, DirectPathNeverUsesTomography) {
  HistoryWindow w(&options_);
  add_obs(w, 1, 2, bounce0_, 100.0, 8);
  Predictor p(options_, backbone_);
  p.train(w);
  EXPECT_FALSE(p.predict(1, 2, RelayOptionTable::direct_id(), Metric::Rtt).valid);
}

TEST_F(PredictorTest, PredictionsPerMetric) {
  HistoryWindow w(&options_);
  for (int i = 0; i < 5; ++i) {
    Observation o;
    o.src_as = 1;
    o.dst_as = 2;
    o.option = 0;
    o.perf = {100.0, 2.0, 8.0};
    w.add(o);
  }
  Predictor p(options_, backbone_);
  p.train(w);
  EXPECT_NEAR(p.predict(1, 2, 0, Metric::Loss).mean, 2.0, 1e-9);
  EXPECT_NEAR(p.predict(1, 2, 0, Metric::Jitter).mean, 8.0, 1e-9);
}

TEST_F(PredictorTest, RetrainReplacesWindow) {
  HistoryWindow w1(&options_);
  add_obs(w1, 1, 2, 0, 100.0, 5);
  HistoryWindow w2(&options_);
  add_obs(w2, 1, 2, 0, 300.0, 5);
  Predictor p(options_, backbone_);
  p.train(w1);
  EXPECT_NEAR(p.predict(1, 2, 0, Metric::Rtt).mean, 101.0, 1e-9);
  p.train(w2);
  EXPECT_NEAR(p.predict(1, 2, 0, Metric::Rtt).mean, 301.0, 1e-9);
}

TEST_F(PredictorTest, LowerBoundNeverNegative) {
  HistoryWindow w(&options_);
  // Two wildly different samples give a huge SEM.
  Observation o;
  o.src_as = 1;
  o.dst_as = 2;
  o.option = 0;
  o.perf = {1.0, 0.0, 0.0};
  w.add(o);
  o.perf = {500.0, 0.0, 0.0};
  w.add(o);
  o.perf = {2.0, 0.0, 0.0};
  w.add(o);
  Predictor p(options_, backbone_);
  p.train(w);
  const Prediction pred = p.predict(1, 2, 0, Metric::Rtt);
  ASSERT_TRUE(pred.valid);
  EXPECT_GE(pred.lower, 0.0);
}

}  // namespace
}  // namespace via
