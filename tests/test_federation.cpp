// Federation tests (DESIGN.md §6k): the sharded multi-controller plane.
//   - ShardRing: determinism, virtual-node balance, and the consistent-
//     hashing minimal-disruption property (removing a replica only moves
//     the keys it owned),
//   - SegmentExchange + TomographySolver::fold_peer_segments: latest-per-
//     peer storage, deterministic merge order, evidence-weighted folding,
//     and the empty-fold no-op that keeps a single-replica ring
//     bit-identical to a standalone controller,
//   - pooled-vs-isolated convergence: shards that gossip segments predict
//     paths they never observed; isolated shards cannot,
//   - wire protocol: Ping/Pong/GossipSegments round trips, replica
//     identity stamps, and backward-compatible decoding of pre-federation
//     frames,
//   - chaos suites on an in-process fleet: kill 1 of 3 (re-homing, zero
//     lost observations, flight narrative in seq order), probation under
//     flap, full-controller outage with direct fallback and recovery, and
//     client reconnect-after-reset against the io_uring backend.
// This file runs under ASan+UBSan and TSan in CI (tools/ci.sh).
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/relay_option.h"
#include "common/types.h"
#include "core/tomography.h"
#include "core/via_policy.h"
#include "fed/federation.h"
#include "fed/segment_exchange.h"
#include "fed/shard_ring.h"
#include "flight_dump.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "quality/pnr.h"
#include "rpc/client.h"
#include "rpc/errors.h"
#include "rpc/fed_client.h"
#include "rpc/fed_fleet.h"
#include "rpc/framing.h"
#include "rpc/messages.h"
#include "rpc/server.h"
#include "rpc/uring_reactor.h"

VIA_REGISTER_FLIGHT_DUMP("test_federation");

namespace via {
namespace {

// ---------------------------------------------------------------- shard ring

TEST(ShardRing, DeterministicOwnersAndFullRoutes) {
  const fed::ShardRing a(3, 0x5eed, 64);
  const fed::ShardRing b(3, 0x5eed, 64);
  for (std::uint64_t k = 0; k < 500; ++k) {
    const std::uint64_t key = as_pair_key(static_cast<AsId>(k % 97), static_cast<AsId>(k / 7));
    EXPECT_EQ(a.owner(key), b.owner(key));
    const std::vector<std::uint32_t> route = a.route(key);
    ASSERT_EQ(route.size(), 3u);
    EXPECT_EQ(route.front(), a.owner(key));
    // All replicas appear exactly once: the full failover order.
    std::array<int, 3> seen{};
    for (const std::uint32_t r : route) ++seen[r];
    EXPECT_EQ(seen, (std::array<int, 3>{1, 1, 1}));
    EXPECT_EQ(route, b.route(key));
  }
  // A different seed shuffles ownership (the ring is seed-keyed config).
  const fed::ShardRing c(3, 0xfeed, 64);
  int moved = 0;
  for (std::uint64_t key = 0; key < 500; ++key) {
    if (a.owner(key) != c.owner(key)) ++moved;
  }
  EXPECT_GT(moved, 0);
}

TEST(ShardRing, VirtualNodesBalanceTheSplit) {
  const fed::ShardRing ring(3, 42, 128);
  const std::vector<std::uint64_t> split = ring.load_split(30'000);
  ASSERT_EQ(split.size(), 3u);
  std::uint64_t total = 0, lo = split[0], hi = split[0];
  for (const std::uint64_t n : split) {
    total += n;
    lo = std::min(lo, n);
    hi = std::max(hi, n);
  }
  EXPECT_EQ(total, 30'000u);
  // Virtual nodes keep the heaviest shard within 2x the lightest.
  EXPECT_GT(lo, 0u);
  EXPECT_LE(hi, 2 * lo);
}

TEST(ShardRing, RemovingAReplicaOnlyMovesItsKeys) {
  const fed::ShardRing three(3, 7, 64);
  const fed::ShardRing two(2, 7, 64);
  int moved = 0;
  for (std::uint64_t k = 0; k < 2'000; ++k) {
    const std::uint64_t key = k * 0x9E3779B97F4A7C15ULL + 3;
    const std::uint32_t before = three.owner(key);
    if (before != 2) {
      // Minimal disruption: keys the removed replica never owned stay put.
      EXPECT_EQ(two.owner(key), before) << "key " << key;
    } else {
      // Its keys land on exactly the failover successor the 3-ring names.
      EXPECT_EQ(two.owner(key), three.route(key)[1]) << "key " << key;
      ++moved;
    }
  }
  EXPECT_GT(moved, 0);  // the removed replica did own some keys
}

// ---------------------------------------------------------- segment exchange

[[nodiscard]] PeerSegment make_segment(std::uint64_t key, double lin_mean,
                                       std::int64_t evidence) {
  PeerSegment s;
  s.key = key;
  s.est.lin_mean.fill(lin_mean);
  s.est.lin_sem.fill(lin_mean / 10.0);
  s.est.evidence = evidence;
  return s;
}

TEST(SegmentExchange, LatestUpdatePerPeerAndOrderIndependentCollect) {
  const fed::SegmentUpdate from1{1, 1, {make_segment(20, 2.0, 4), make_segment(10, 1.0, 8)}};
  const fed::SegmentUpdate from2{2, 1, {make_segment(10, 1.5, 2)}};

  fed::SegmentExchange forward;
  EXPECT_EQ(forward.accept(from1), 2u);
  EXPECT_EQ(forward.accept(from2), 1u);
  fed::SegmentExchange reverse;
  EXPECT_EQ(reverse.accept(from2), 1u);
  EXPECT_EQ(reverse.accept(from1), 2u);

  const std::vector<PeerSegment> a = forward.collect();
  const std::vector<PeerSegment> b = reverse.collect();
  ASSERT_EQ(a.size(), 3u);
  // Deterministic merge order regardless of arrival order: (key, replica).
  EXPECT_EQ(a[0].key, 10u);
  EXPECT_DOUBLE_EQ(a[0].est.lin_mean[0], 1.0);  // replica 1's key-10 first
  EXPECT_EQ(a[1].key, 10u);
  EXPECT_DOUBLE_EQ(a[1].est.lin_mean[0], 1.5);  // then replica 2's
  EXPECT_EQ(a[2].key, 20u);
  ASSERT_EQ(b.size(), a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(b[i].key, a[i].key);
    EXPECT_EQ(b[i].est.evidence, a[i].est.evidence);
  }

  // collect() is a view, not a drain; a newer update replaces its peer's.
  EXPECT_EQ(forward.segments_held(), 3u);
  EXPECT_EQ(forward.accept(fed::SegmentUpdate{1, 1, {make_segment(30, 3.0, 1)}}), 1u);
  EXPECT_EQ(forward.segments_held(), 2u);
  EXPECT_EQ(forward.peers(), 2u);
  EXPECT_EQ(forward.updates_accepted(), 3);
}

TEST(SegmentExchange, RenderOrdersByEvidenceAndTruncates) {
  RelayOptionTable options;
  (void)options.intern_bounce(0);
  TomographySolver solver(options, [](RelayId, RelayId) { return PathPerformance{}; });
  // Populate via the fold path (adopting unknown segments).
  ASSERT_EQ(solver.fold_peer_segments(
                {make_segment(5, 1.0, 5), make_segment(9, 2.0, 9), make_segment(1, 3.0, 1)}),
            3u);

  const std::vector<PeerSegment> top = fed::SegmentExchange::render(solver, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].key, 9u);  // highest evidence first
  EXPECT_EQ(top[1].key, 5u);
  const std::vector<PeerSegment> all = fed::SegmentExchange::render(solver, 100);
  EXPECT_EQ(all.size(), 3u);
}

// ----------------------------------------------------------------- fold math

TEST(TomographyFold, EvidenceWeightedMergeAdoptsAndMerges) {
  RelayOptionTable options;
  (void)options.intern_bounce(0);
  TomographySolver solver(options, [](RelayId, RelayId) { return PathPerformance{}; });

  // Empty fold is a strict no-op (the single-replica-ring guarantee).
  EXPECT_EQ(solver.fold_peer_segments({}), 0u);
  EXPECT_EQ(solver.segment_count(), 0u);

  const std::uint64_t key = TomographySolver::segment_key(1, 0);
  ASSERT_EQ(solver.fold_peer_segments({make_segment(key, 1.0, 10)}), 1u);
  const SegmentEstimate* est = solver.segment(1, 0);
  ASSERT_NE(est, nullptr);
  EXPECT_DOUBLE_EQ(est->lin_mean[0], 1.0);
  EXPECT_EQ(est->evidence, 10);

  // A second fold of the same segment merges by evidence-weighted mean:
  // (10*1.0 + 30*2.0) / 40 = 1.75, evidence pooled.
  ASSERT_EQ(solver.fold_peer_segments({make_segment(key, 2.0, 30)}), 1u);
  est = solver.segment(1, 0);
  ASSERT_NE(est, nullptr);
  for (std::size_t m = 0; m < kNumMetrics; ++m) {
    EXPECT_DOUBLE_EQ(est->lin_mean[m], 1.75);
  }
  EXPECT_EQ(est->evidence, 40);

  // Zero-evidence entries carry no information and are skipped.
  EXPECT_EQ(solver.fold_peer_segments({make_segment(77, 5.0, 0)}), 0u);
  EXPECT_EQ(solver.segment(0, 77 & 0xFFFF), nullptr);
}

// --------------------------------------------------- single-replica identity

/// The determinism acceptance criterion: a policy wired for federation but
/// with no peers (a single-replica ring) must make bit-identical choices
/// and build bit-identical segment estimates to a plain standalone policy.
TEST(FederationDeterminism, EmptyPeerSourceIsBitIdenticalToStandalone) {
  RelayOptionTable plain_options;
  RelayOptionTable fed_options;
  const OptionId bounce_p = plain_options.intern_bounce(0);
  const OptionId bounce_f = fed_options.intern_bounce(0);
  ASSERT_EQ(bounce_p, bounce_f);
  const auto backbone = [](RelayId, RelayId) { return PathPerformance{}; };
  ViaConfig cfg;
  cfg.epsilon = 0.2;  // exercise the seeded exploration path too
  cfg.seed = 13;
  ViaPolicy plain(plain_options, backbone, cfg);
  ViaPolicy federated(fed_options, backbone, cfg);
  fed::SegmentExchange exchange;  // never fed: every collect() is empty
  federated.set_peer_segment_source([&exchange] { return exchange.collect(); });

  const auto feed = [&](ViaPolicy& policy, OptionId bounce) {
    for (int i = 0; i < 12; ++i) {
      for (AsId s = 1; s <= 4; ++s) {
        Observation o;
        o.id = i * 10 + s;
        o.src_as = s;
        o.dst_as = static_cast<AsId>(s + 10);
        o.time = i;
        o.option = (i % 3 == 0) ? RelayOptionTable::direct_id() : bounce;
        o.perf = {120.0 + 5.0 * s + i, 0.4, 3.0 + 0.1 * i};
        policy.observe(o);
      }
    }
  };
  feed(plain, bounce_p);
  feed(federated, bounce_f);
  plain.refresh(kSecondsPerDay);
  federated.refresh(kSecondsPerDay);
  EXPECT_EQ(federated.peer_segments_folded(), 0);

  // Segment estimates must match bit-for-bit.
  std::vector<std::pair<std::uint64_t, SegmentEstimate>> seg_p, seg_f;
  plain.model()->predictor().tomography().for_each_segment(
      [&](std::uint64_t k, const SegmentEstimate& e) { seg_p.emplace_back(k, e); });
  federated.model()->predictor().tomography().for_each_segment(
      [&](std::uint64_t k, const SegmentEstimate& e) { seg_f.emplace_back(k, e); });
  ASSERT_EQ(seg_p.size(), seg_f.size());
  ASSERT_GT(seg_p.size(), 0u);
  for (std::size_t i = 0; i < seg_p.size(); ++i) {
    EXPECT_EQ(seg_p[i].first, seg_f[i].first);
    EXPECT_EQ(seg_p[i].second.evidence, seg_f[i].second.evidence);
    for (std::size_t m = 0; m < kNumMetrics; ++m) {
      EXPECT_EQ(seg_p[i].second.lin_mean[m], seg_f[i].second.lin_mean[m]);
      EXPECT_EQ(seg_p[i].second.lin_sem[m], seg_f[i].second.lin_sem[m]);
    }
  }

  // And the choice stream (including epsilon exploration) stays identical.
  const std::vector<OptionId> candidates = {RelayOptionTable::direct_id(), bounce_p};
  for (int i = 0; i < 200; ++i) {
    CallContext ctx;
    ctx.id = i;
    ctx.time = i;
    ctx.src_as = ctx.key_src = static_cast<AsId>(1 + i % 4);
    ctx.dst_as = ctx.key_dst = static_cast<AsId>(11 + i % 4);
    ctx.options = candidates;
    EXPECT_EQ(plain.choose(ctx), federated.choose(ctx)) << "call " << i;
  }
}

// ------------------------------------------------ pooled-vs-isolated shards

/// The convergence acceptance criterion: segments are shared across AS
/// pairs (§4.3), so shards that pool them can predict paths they never
/// carried a call on, while isolated shards cannot.
TEST(FederationConvergence, PooledShardsCoverPathsIsolatedShardsCannot) {
  RelayOptionTable options;
  const OptionId bounce = options.intern_bounce(0);
  const auto backbone = [](RelayId, RelayId) { return PathPerformance{}; };
  ViaConfig cfg;
  cfg.epsilon = 0.0;
  ViaPolicy pooled_a(options, backbone, cfg), isolated_a(options, backbone, cfg);
  ViaPolicy pooled_b(options, backbone, cfg), isolated_b(options, backbone, cfg);
  fed::SegmentExchange ex_a, ex_b;
  pooled_a.set_peer_segment_source([&ex_a] { return ex_a.collect(); });
  pooled_b.set_peer_segment_source([&ex_b] { return ex_b.collect(); });

  const std::vector<std::pair<AsId, AsId>> pairs_a = {{1, 2}, {3, 4}};
  const std::vector<std::pair<AsId, AsId>> pairs_b = {{11, 12}, {13, 14}};
  const auto feed = [&](ViaPolicy& policy, const std::vector<std::pair<AsId, AsId>>& pairs) {
    for (int i = 0; i < 6; ++i) {
      for (const auto& [s, d] : pairs) {
        Observation o;
        o.id = i * 100 + s;
        o.src_as = s;
        o.dst_as = d;
        o.time = i;
        o.option = bounce;
        o.perf = {110.0 + 2.0 * s + i, 0.4, 3.0};
        policy.observe(o);
      }
    }
  };

  // Round 1: each shard sees only its own pairs.
  for (auto* p : {&pooled_a, &isolated_a}) feed(*p, pairs_a);
  for (auto* p : {&pooled_b, &isolated_b}) feed(*p, pairs_b);
  for (auto* p : {&pooled_a, &isolated_a, &pooled_b, &isolated_b}) p->refresh(kSecondsPerDay);

  // One gossip exchange between the pooled shards.
  ex_a.accept(fed::SegmentUpdate{
      1, 1, fed::SegmentExchange::render(pooled_b.model()->predictor().tomography(), 1024)});
  ex_b.accept(fed::SegmentUpdate{
      0, 1, fed::SegmentExchange::render(pooled_a.model()->predictor().tomography(), 1024)});

  // Round 2: same traffic again; the pooled shards fold peer segments in.
  for (auto* p : {&pooled_a, &isolated_a}) feed(*p, pairs_a);
  for (auto* p : {&pooled_b, &isolated_b}) feed(*p, pairs_b);
  for (auto* p : {&pooled_a, &isolated_a, &pooled_b, &isolated_b}) {
    p->refresh(2 * kSecondsPerDay);
  }
  EXPECT_GT(pooled_a.peer_segments_folded(), 0);
  EXPECT_GT(pooled_b.peer_segments_folded(), 0);
  EXPECT_EQ(isolated_a.peer_segments_folded(), 0);

  const auto coverage = [&](ViaPolicy& policy) {
    int covered = 0;
    std::array<double, kNumMetrics> mean{}, sem{};
    const auto snapshot = policy.model();
    for (const auto& pairs : {pairs_a, pairs_b}) {
      for (const auto& [s, d] : pairs) {
        if (snapshot->predictor().tomography().predict_lin(s, d, bounce, mean, sem)) ++covered;
      }
    }
    return covered;
  };
  // Isolated shards only ever cover their own 2 pairs; pooled shards cover
  // all 4 — they converge on the full pair space with the same call count.
  EXPECT_EQ(coverage(isolated_a), 2);
  EXPECT_EQ(coverage(isolated_b), 2);
  EXPECT_EQ(coverage(pooled_a), 4);
  EXPECT_EQ(coverage(pooled_b), 4);
}

// ------------------------------------------------------------ wire protocol

TEST(FederationWire, PingPongAndGossipRoundTrip) {
  {
    PongMsg pong;
    pong.replica_id = 3;
    pong.ring_epoch = 9;
    WireWriter w;
    pong.encode(w);
    WireReader r(w.bytes());
    const PongMsg back = PongMsg::decode(r);
    EXPECT_EQ(back.replica_id, 3u);
    EXPECT_EQ(back.ring_epoch, 9u);
  }
  {
    GossipSegmentsMsg msg;
    msg.replica_id = 1;
    msg.ring_epoch = 2;
    msg.segments = {make_segment(42, 1.25, 6), make_segment(7, -0.5, 3)};
    WireWriter w;
    msg.encode(w);
    WireReader r(w.bytes());
    const GossipSegmentsMsg back = GossipSegmentsMsg::decode(r);
    EXPECT_EQ(back.replica_id, 1u);
    EXPECT_EQ(back.ring_epoch, 2u);
    ASSERT_EQ(back.segments.size(), 2u);
    EXPECT_EQ(back.segments[0].key, 42u);
    EXPECT_DOUBLE_EQ(back.segments[1].est.lin_mean[0], -0.5);
    EXPECT_EQ(back.segments[1].est.evidence, 3);
  }
  {
    GossipSegmentsAckMsg ack;
    ack.replica_id = 2;
    ack.ring_epoch = 4;
    ack.accepted = 17;
    WireWriter w;
    ack.encode(w);
    WireReader r(w.bytes());
    const GossipSegmentsAckMsg back = GossipSegmentsAckMsg::decode(r);
    EXPECT_EQ(back.replica_id, 2u);
    EXPECT_EQ(back.ring_epoch, 4u);
    EXPECT_EQ(back.accepted, 17u);
  }
}

TEST(FederationWire, OversizedGossipCountIsRejectedNotAllocated) {
  WireWriter w;
  w.u32(1);           // replica
  w.u64(1);           // epoch
  w.u32(1'000'000);   // claimed segment count with no payload behind it
  WireReader r(w.bytes());
  EXPECT_THROW((void)GossipSegmentsMsg::decode(r), ProtocolError);
}

TEST(FederationWire, ReplicaStampsAreBackwardCompatible) {
  {
    DecisionResponse resp;
    resp.call_id = 5;
    resp.option = 2;
    resp.replica_id = 3;
    resp.ring_epoch = 7;
    WireWriter w;
    resp.encode(w);
    WireReader r(w.bytes());
    const DecisionResponse back = DecisionResponse::decode(r);
    EXPECT_EQ(back.replica_id, 3u);
    EXPECT_EQ(back.ring_epoch, 7u);
  }
  {
    // A pre-federation frame ends after (call_id, option) and must decode
    // with the unfederated identity 0/0.
    WireWriter w;
    w.i64(5);
    w.i32(2);
    WireReader r(w.bytes());
    const DecisionResponse back = DecisionResponse::decode(r);
    EXPECT_EQ(back.call_id, 5);
    EXPECT_EQ(back.option, 2);
    EXPECT_EQ(back.replica_id, 0u);
    EXPECT_EQ(back.ring_epoch, 0u);
  }
}

// ------------------------------------------------------------ flight kinds

TEST(FederationFlight, ReplicaEventKindsRoundTripByNameAndJsonl) {
  using obs::FlightEventKind;
  for (const FlightEventKind kind :
       {FlightEventKind::ReplicaDown, FlightEventKind::ReplicaRehomed,
        FlightEventKind::ReplicaRecovered, FlightEventKind::RingEpochBump}) {
    const std::string_view name = obs::flight_event_kind_name(kind);
    ASSERT_FALSE(name.empty());
    const auto parsed = obs::flight_event_kind_from(name);
    ASSERT_TRUE(parsed.has_value()) << name;
    EXPECT_EQ(*parsed, kind);
  }
  obs::FlightEvent event;
  event.kind = obs::FlightEventKind::ReplicaRehomed;
  event.detail = "shard traffic re-homed to ring successor";
  event.a = 0;
  event.b = 1;
  const auto back = obs::FlightEvent::from_jsonl(event.to_jsonl());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->kind, obs::FlightEventKind::ReplicaRehomed);
  EXPECT_EQ(back->a, 0);
  EXPECT_EQ(back->b, 1);
}

// ----------------------------------------------------------- live RPC layer

/// Counts interactions; optionally stalls in choose() to hold requests
/// inflight (the shedding-exemption test).
class CountingPolicy final : public RoutingPolicy {
 public:
  explicit CountingPolicy(OptionId option = 1, int choose_delay_ms = 0)
      : option_(option), choose_delay_ms_(choose_delay_ms) {}
  [[nodiscard]] OptionId choose(const CallContext&) override {
    if (choose_delay_ms_ > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(choose_delay_ms_));
    }
    ++chosen;
    return option_;
  }
  void observe(const Observation&) override { ++observed; }
  void refresh(TimeSec) override { ++refreshed; }
  [[nodiscard]] std::string_view name() const override { return "counting"; }

  std::atomic<int> chosen{0}, observed{0}, refreshed{0};

 private:
  OptionId option_;
  int choose_delay_ms_;
};

TEST(FederationRpc, RepliesCarryReplicaIdentity) {
  CountingPolicy policy(1);
  ServerConfig sc;
  sc.replica_id = 2;
  sc.ring_epoch = 5;
  ControllerServer server(policy, 0, sc);
  server.start();

  ControllerClient client(server.port());
  DecisionRequest req;
  req.call_id = 1;
  req.options = {0, 1};
  (void)client.request_decision(req);
  EXPECT_EQ(client.last_replica_id(), 2u);
  EXPECT_EQ(client.last_ring_epoch(), 5u);
  (void)client.get_stats(obs::StatsFormat::Json);
  EXPECT_EQ(client.last_replica_id(), 2u);
  client.shutdown();
  server.stop();
}

/// Ping and GossipSegments are shedding-exempt: with the server's one
/// inflight slot held by a stalled decision, the control-plane RPCs still
/// answer immediately instead of drawing Busy.
TEST(FederationRpc, PingAndGossipSkipSheddingAndReachTheHandler) {
  CountingPolicy policy(1, /*choose_delay_ms=*/400);
  ServerConfig sc;
  sc.replica_id = 4;
  sc.ring_epoch = 9;
  sc.max_inflight = 1;
  ControllerServer server(policy, 0, sc);
  std::atomic<std::size_t> gossip_segments{0};
  server.set_gossip_handler([&](const GossipSegmentsMsg& msg) {
    gossip_segments += msg.segments.size();
    return msg.segments.size();
  });
  server.start();

  std::thread saturator([&] {
    ControllerClient c(server.port());
    DecisionRequest req;
    req.call_id = 1;
    req.options = {0, 1};
    (void)c.request_decision(req);
    c.shutdown();
  });
  // Let the decision occupy the single inflight slot.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  ControllerClient probe(server.port());
  const auto t0 = std::chrono::steady_clock::now();
  const PongMsg pong = probe.ping();
  const auto ping_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  EXPECT_EQ(pong.replica_id, 4u);
  EXPECT_EQ(pong.ring_epoch, 9u);
  EXPECT_LT(ping_ms, 300);  // answered while the decision was still stalled

  GossipSegmentsMsg msg;
  msg.replica_id = 1;
  msg.ring_epoch = 9;
  msg.segments = {make_segment(11, 1.0, 2), make_segment(12, 2.0, 4)};
  const GossipSegmentsAckMsg ack = probe.gossip_segments(msg);
  EXPECT_EQ(ack.accepted, 2u);
  EXPECT_EQ(ack.replica_id, 4u);
  probe.shutdown();

  saturator.join();
  server.stop();
  EXPECT_EQ(server.busy_rejections(), 0);
  EXPECT_EQ(server.pings_served(), 1);
  EXPECT_EQ(server.gossip_updates(), 1);
  EXPECT_EQ(gossip_segments.load(), 2u);
}

// ------------------------------------------------------------- chaos suites

class FederationChaosTest : public ::testing::Test {
 protected:
  FederationChaosTest() { bounce_ = options_.intern_bounce(0); }

  [[nodiscard]] FedFleetConfig fleet_config(std::uint32_t replicas) const {
    FedFleetConfig cfg;
    cfg.replicas = replicas;
    cfg.via.epsilon = 0.0;
    cfg.via.seed = 11;
    cfg.fed.fail_threshold = 1;
    cfg.fed.probe_period_ms = 100;
    // kill() severs the chaos clients' live connections; don't wait the
    // full default drain on them.
    cfg.server.drain_timeout_ms = 50;
    return cfg;
  }

  [[nodiscard]] static FedClientConfig fed_client_config() {
    FedClientConfig c;
    c.rpc.request_timeout_ms = 250;
    c.rpc.max_retries = 1;
    c.rpc.backoff_base_ms = 1;
    c.rpc.backoff_max_ms = 4;
    return c;
  }

  RelayOptionTable options_;
  OptionId bounce_ = kInvalidOption;
  BackboneFn backbone_ = [](RelayId, RelayId) { return PathPerformance{}; };
};

/// The kill-1-of-3 acceptance scenario: mid-trace, one replica dies.  Its
/// shard's traffic re-homes to the ring successor, zero observations are
/// lost across the fleet, and the flight narrative reads replica_down
/// before replica_rehomed in seq order.
TEST_F(FederationChaosTest, KillOneOfThreeRehomesWithZeroLostObservations) {
  FedFleetConfig cfg = fleet_config(3);
  cfg.fed.probe_period_ms = 60'000;  // the victim stays down for the test
  FedFleet fleet(options_, backbone_, cfg);
  fleet.start();

  FederatedClient client(fleet.federation(), fed_client_config());
  obs::FlightRecorder flight(1024);
  client.attach_flight(&flight);
  obs::MetricsRegistry registry;
  client.attach_metrics(&registry);

  CallId seq = 0;
  int sent = 0;
  const auto drive = [&](AsId s, AsId d, int n) {
    for (int i = 0; i < n; ++i) {
      DecisionRequest req;
      req.call_id = ++seq;
      req.time = seq;
      req.src_as = s;
      req.dst_as = d;
      req.options = {RelayOptionTable::direct_id(), bounce_};
      (void)client.request_decision(req);
      Observation o;
      o.id = req.call_id;
      o.src_as = s;
      o.dst_as = d;
      o.option = bounce_;
      o.time = seq;
      o.perf = {105.0 + i, 0.3, 3.0};
      client.report(o);
      ++sent;
    }
  };

  // Phase 1: traffic across several shards, all replicas up.
  for (AsId s = 1; s <= 6; ++s) drive(s, static_cast<AsId>(s + 10), 3);
  EXPECT_EQ(client.replicas_marked_down(), 0);
  EXPECT_EQ(fleet.total_reports(), sent);

  // Kill the replica owning one of the driven shards, then keep driving.
  const std::uint32_t victim = client.ring().owner(as_pair_key(1, 11));
  fleet.kill(victim);
  for (AsId s = 1; s <= 6; ++s) drive(s, static_cast<AsId>(s + 10), 3);

  EXPECT_EQ(client.replicas_marked_down(), 1);
  EXPECT_GT(client.rehomed_requests(), 0);
  EXPECT_EQ(client.fallback_decisions(), 0);  // survivors absorbed the shard
  EXPECT_EQ(registry.counter("fed.client.rehomed_requests").value(),
            client.rehomed_requests());

  // Zero lost observations: every distinct report landed exactly once
  // somewhere in the fleet, none buffered, none dropped.
  EXPECT_EQ(client.reports_lost(), 0);
  EXPECT_EQ(client.pending_reports(), 0u);
  EXPECT_EQ(fleet.total_reports(), sent);
  EXPECT_EQ(fleet.total_decisions(), sent);

  // Flight narrative, verified in seq order: down strictly before rehome.
  std::int64_t down_seq = -1, rehome_seq = -1;
  for (const obs::FlightEvent& e : flight.snapshot()) {
    if (e.kind == obs::FlightEventKind::ReplicaDown && e.a == victim && down_seq < 0) {
      down_seq = e.seq;
    }
    if (e.kind == obs::FlightEventKind::ReplicaRehomed && e.a == victim && rehome_seq < 0) {
      rehome_seq = e.seq;
      EXPECT_NE(static_cast<std::uint32_t>(e.b), victim);  // successor differs
    }
  }
  ASSERT_GE(down_seq, 0);
  ASSERT_GE(rehome_seq, 0);
  EXPECT_LT(down_seq, rehome_seq);
}

/// Probation bounds flap thrash: a replica that comes back is not given
/// traffic until a probation probe succeeds, and the down transition is
/// recorded once, not per request.
TEST_F(FederationChaosTest, ProbationKeepsRestartedReplicaOutUntilProbe) {
  FedFleetConfig cfg = fleet_config(2);
  cfg.fed.probe_period_ms = 60'000;  // no probe lands during this test
  FedFleet fleet(options_, backbone_, cfg);
  fleet.start();

  FederatedClient client(fleet.federation(), fed_client_config());

  // Find a pair whose shard home is replica 0.
  AsId src = 1;
  while (client.ring().owner(as_pair_key(src, static_cast<AsId>(src + 10))) != 0) ++src;
  const AsId dst = static_cast<AsId>(src + 10);

  fleet.kill(0);
  CallId seq = 0;
  const auto drive_one = [&] {
    DecisionRequest req;
    req.call_id = ++seq;
    req.time = seq;
    req.src_as = src;
    req.dst_as = dst;
    req.options = {RelayOptionTable::direct_id(), bounce_};
    (void)client.request_decision(req);
  };
  drive_one();  // trips the health threshold and re-homes
  EXPECT_EQ(client.replica_state(0), FederatedClient::ReplicaState::kDown);
  EXPECT_EQ(client.replicas_marked_down(), 1);

  // The replica returns immediately — a flap.  Probation must keep its
  // traffic on the successor until a probe period elapses, so a flapping
  // replica can never thrash requests back and forth.
  fleet.restart(0);
  const std::int64_t before = fleet.server(1).decisions_served();
  for (int i = 0; i < 10; ++i) drive_one();
  EXPECT_EQ(client.replica_state(0), FederatedClient::ReplicaState::kDown);
  EXPECT_EQ(client.replicas_recovered(), 0);
  EXPECT_EQ(client.replicas_marked_down(), 1);  // one transition, not ten
  EXPECT_EQ(fleet.server(1).decisions_served() - before, 10);
  EXPECT_EQ(fleet.server(0).decisions_served(), 0);
  // Even an explicit probe request respects the probation window.
  EXPECT_FALSE(client.probe_replica(0));
}

/// The full-controller-outage drill: every replica dies, clients fall back
/// to the direct path and buffer their observations; after the restart the
/// client re-homes within one probe period, the buffered reports flush,
/// and PNR returns to the no-fault level.
TEST_F(FederationChaosTest, FullOutageFallsBackDirectThenRecovers) {
  FedFleetConfig cfg = fleet_config(2);
  FedFleet fleet(options_, backbone_, cfg);
  fleet.start();

  // Teach every replica that the bounce clearly beats the poor direct path
  // for the drilled pair (direct trips every PNR threshold).
  for (std::uint32_t r = 0; r < fleet.replicas(); ++r) {
    for (int i = 0; i < 8; ++i) {
      Observation direct;
      direct.id = 1'000 + i;
      direct.src_as = 1;
      direct.dst_as = 2;
      direct.option = RelayOptionTable::direct_id();
      direct.time = i;
      direct.perf = {330.0 + i, 1.4, 13.0};
      fleet.policy(r).observe(direct);
      Observation bounce;
      bounce.id = 2'000 + i;
      bounce.src_as = 1;
      bounce.dst_as = 2;
      bounce.option = bounce_;
      bounce.time = i;
      bounce.perf = {100.0 + i, 0.3, 3.0};
      fleet.policy(r).observe(bounce);
    }
    fleet.policy(r).refresh(kSecondsPerDay);
  }

  FedClientConfig fc = fed_client_config();
  fc.rpc.max_retries = 0;
  fc.rpc.request_timeout_ms = 150;
  FederatedClient client(fleet.federation(), fc);
  obs::FlightRecorder flight(1024);
  client.attach_flight(&flight);

  CallId seq = 0;
  const auto perf_of = [&](OptionId pick, int i) {
    return pick == bounce_ ? PathPerformance{100.0 + i, 0.3, 3.0}
                           : PathPerformance{330.0 + i, 1.4, 13.0};
  };
  const auto drive = [&](PnrAccumulator& pnr, int n) {
    for (int i = 0; i < n; ++i) {
      DecisionRequest req;
      req.call_id = ++seq;
      req.time = seq;
      req.src_as = 1;
      req.dst_as = 2;
      req.options = {RelayOptionTable::direct_id(), bounce_};
      const OptionId pick = client.request_decision(req);
      pnr.add(perf_of(pick, i));
      Observation o;
      o.id = req.call_id;
      o.src_as = 1;
      o.dst_as = 2;
      o.option = pick;
      o.time = seq;
      o.perf = perf_of(pick, i);
      client.report(o);
    }
  };

  PnrAccumulator before, during, after;
  drive(before, 10);
  EXPECT_DOUBLE_EQ(before.pnr_any(), 0.0);  // the relay keeps calls healthy
  EXPECT_EQ(fleet.total_reports(), 10);

  fleet.kill(0);
  fleet.kill(1);
  drive(during, 10);
  EXPECT_EQ(client.fallback_decisions(), 10);  // every call served direct
  EXPECT_DOUBLE_EQ(during.pnr_any(), 1.0);     // relay gain lost, calls poor
  EXPECT_EQ(client.pending_reports(), 10u);    // measurements parked, not lost
  EXPECT_EQ(client.reports_lost(), 0);

  fleet.restart(0);
  fleet.restart(1);
  // One probe period later the probation Ping readmits the replicas.
  std::this_thread::sleep_for(std::chrono::milliseconds(cfg.fed.probe_period_ms + 50));
  drive(after, 10);
  EXPECT_GE(client.replicas_recovered(), 1);
  EXPECT_EQ(client.pending_reports(), 0u);
  EXPECT_EQ(client.reports_flushed(), 10);
  EXPECT_EQ(client.reports_lost(), 0);
  // The outage lost the calls' relay gain, never their measurements.
  EXPECT_EQ(fleet.total_reports(), 30);
  // PNR recovered to the no-fault tail exactly.
  EXPECT_DOUBLE_EQ(after.pnr_any(), before.pnr_any());

  // The narrative: fallback during the outage, recovery after the restart.
  bool saw_fallback = false, saw_recovered = false;
  for (const obs::FlightEvent& e : flight.snapshot()) {
    if (e.kind == obs::FlightEventKind::RpcFallback) saw_fallback = true;
    if (e.kind == obs::FlightEventKind::ReplicaRecovered) saw_recovered = true;
  }
  EXPECT_TRUE(saw_fallback);
  EXPECT_TRUE(saw_recovered);
}

/// Stale-ring detection: a client whose configured ring epoch trails the
/// fleet's records one ring_epoch_bump flight event (then adopts the
/// observed epoch) instead of spamming one per request.
TEST_F(FederationChaosTest, StaleRingEpochIsDetectedOnce) {
  FedFleetConfig cfg = fleet_config(1);
  cfg.fed.ring_epoch = 5;
  FedFleet fleet(options_, backbone_, cfg);
  fleet.start();

  fed::FederationConfig stale = fleet.federation();
  stale.ring_epoch = 4;
  FederatedClient client(stale, fed_client_config());
  obs::FlightRecorder flight(64);
  client.attach_flight(&flight);

  for (int i = 0; i < 3; ++i) {
    DecisionRequest req;
    req.call_id = i + 1;
    req.time = i;
    req.src_as = 1;
    req.dst_as = 2;
    req.options = {RelayOptionTable::direct_id(), bounce_};
    (void)client.request_decision(req);
  }
  EXPECT_EQ(client.ring_epoch_bumps(), 1);
  int bump_events = 0;
  for (const obs::FlightEvent& e : flight.snapshot()) {
    if (e.kind == obs::FlightEventKind::RingEpochBump) {
      ++bump_events;
      EXPECT_EQ(e.a, 4);
      EXPECT_EQ(e.b, 5);
    }
  }
  EXPECT_EQ(bump_events, 1);
}

/// Gossip over the real RPC path pools segments across the fleet: after
/// one gossip round and a refresh, each replica predicts paths only its
/// peer ever observed.
TEST_F(FederationChaosTest, GossipOverRpcPoolsSegmentsAcrossReplicas) {
  FedFleet fleet(options_, backbone_, fleet_config(2));
  fleet.start();

  const auto feed = [&](std::uint32_t r, AsId s, AsId d) {
    for (int i = 0; i < 6; ++i) {
      Observation o;
      o.id = i * 100 + s;
      o.src_as = s;
      o.dst_as = d;
      o.option = bounce_;
      o.time = i;
      o.perf = {120.0 + i, 0.4, 3.5};
      fleet.policy(r).observe(o);
    }
  };
  feed(0, 1, 2);
  feed(1, 21, 22);
  fleet.policy(0).refresh(kSecondsPerDay);
  fleet.policy(1).refresh(kSecondsPerDay);

  EXPECT_EQ(fleet.gossip_once(), 2u);  // both replicas pushed to their peer
  EXPECT_EQ(fleet.exchange(0).peers(), 1u);
  EXPECT_GT(fleet.exchange(0).segments_held(), 0u);
  EXPECT_EQ(fleet.server(0).gossip_updates(), 1);

  feed(0, 1, 2);
  feed(1, 21, 22);
  fleet.policy(0).refresh(2 * kSecondsPerDay);
  fleet.policy(1).refresh(2 * kSecondsPerDay);
  EXPECT_GT(fleet.policy(0).peer_segments_folded(), 0);
  EXPECT_GT(fleet.policy(1).peer_segments_folded(), 0);

  std::array<double, kNumMetrics> mean{}, sem{};
  const auto snap0 = fleet.policy(0).model();
  EXPECT_TRUE(snap0->predictor().tomography().predict_lin(21, 22, bounce_, mean, sem));
  const auto snap1 = fleet.policy(1).model();
  EXPECT_TRUE(snap1->predictor().tomography().predict_lin(1, 2, bounce_, mean, sem));
}

/// Reconnect-after-reset against the io_uring backend: a client whose
/// connection died with the server must transparently reconnect and
/// succeed once the server is back on the same port.
TEST_F(FederationChaosTest, UringBackendClientReconnectsAfterReset) {
  if (!UringReactor::supported()) {
    GTEST_SKIP() << "io_uring unsupported on this kernel";
  }
  FedFleetConfig cfg = fleet_config(1);
  cfg.server.backend = ServingBackend::kUring;
  cfg.server.reactor_threads = 1;
  FedFleet fleet(options_, backbone_, cfg);
  fleet.start();
  ASSERT_EQ(fleet.server(0).serving_backend(), ServingBackend::kUring);

  ClientConfig cc;
  cc.request_timeout_ms = 500;
  cc.max_retries = 10;
  cc.backoff_base_ms = 1;
  cc.backoff_max_ms = 8;
  ControllerClient client(fleet.federation().replica_ports[0], cc);
  obs::MetricsRegistry registry;
  client.attach_metrics(&registry);

  DecisionRequest req;
  req.call_id = 1;
  req.time = 0;
  req.src_as = 1;
  req.dst_as = 2;
  req.options = {RelayOptionTable::direct_id(), bounce_};
  EXPECT_EQ(client.request_decision(req), RelayOptionTable::direct_id());  // cold start

  fleet.kill(0);     // resets the client's established connection
  fleet.restart(0);  // same port, fresh server
  req.call_id = 2;
  EXPECT_EQ(client.request_decision(req), RelayOptionTable::direct_id());
  EXPECT_GE(registry.counter("rpc.client.reconnects").value(), 1);
  client.shutdown();
}

}  // namespace
}  // namespace via
