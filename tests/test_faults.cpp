// Fault-injection and graceful-degradation tests (DESIGN.md §6f):
//   - FaultPlan semantics: outage windows, flaps, degradations, parsing,
//     and the empty-plan no-op guarantee,
//   - RelayHealthTracker state machine: degrade -> quarantine -> probation
//     -> re-admit, with escalating re-quarantine,
//   - ViaPolicy health filtering: a quarantined relay receives zero picks
//     while blocked, with the reroute/fallback visible in stats, telemetry
//     counters, and the decision trace,
//   - engine plumbing: a faulted run completes, impairs samples, drives
//     the health machine, and an *empty* plan replays bit-identically.
#include "sim/faults.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/relay_health.h"
#include "core/via_policy.h"
#include "flight_dump.h"
#include "obs/telemetry.h"
#include "sim/engine.h"
#include "trace/generator.h"

VIA_REGISTER_FLIGHT_DUMP("test_faults");

namespace via {
namespace {

// ----------------------------------------------------------- fault plans

FaultPlan outage_plan(RelayId relay, TimeSec start, TimeSec end) {
  FaultPlanConfig config;
  config.outages.push_back({relay, start, end});
  return FaultPlan(std::move(config));
}

TEST(FaultPlan, OutageWindowIsHalfOpen) {
  const FaultPlan plan = outage_plan(3, 100, 200);
  EXPECT_FALSE(plan.relay_down(3, 99));
  EXPECT_TRUE(plan.relay_down(3, 100));
  EXPECT_TRUE(plan.relay_down(3, 199));
  EXPECT_FALSE(plan.relay_down(3, 200));
  EXPECT_FALSE(plan.relay_down(4, 150));  // other relays unaffected
}

TEST(FaultPlan, OptionDownFollowsRelayUsage) {
  const FaultPlan plan = outage_plan(2, 0, 1000);
  RelayOption direct{RelayKind::Direct, -1, -1};
  RelayOption bounce_hit{RelayKind::Bounce, 2, -1};
  RelayOption bounce_miss{RelayKind::Bounce, 5, -1};
  RelayOption transit_hit{RelayKind::Transit, 7, 2};
  EXPECT_FALSE(plan.option_down(direct, 500));
  EXPECT_TRUE(plan.option_down(bounce_hit, 500));
  EXPECT_FALSE(plan.option_down(bounce_miss, 500));
  EXPECT_TRUE(plan.option_down(transit_hit, 500));
}

TEST(FaultPlan, ApplyReplacesOutageSampleWithImpairment) {
  const FaultPlan plan = outage_plan(1, 0, 1000);
  RelayOption bounce{RelayKind::Bounce, 1, -1};
  PathPerformance perf{80.0, 0.5, 3.0};
  EXPECT_TRUE(plan.apply(bounce, 10, perf));
  EXPECT_DOUBLE_EQ(perf.rtt_ms, plan.config().impairment.outage_rtt_ms);
  EXPECT_DOUBLE_EQ(perf.loss_pct, plan.config().impairment.outage_loss_pct);

  // Outside the window the sample is untouched.
  PathPerformance clean{80.0, 0.5, 3.0};
  EXPECT_FALSE(plan.apply(bounce, 2000, clean));
  EXPECT_DOUBLE_EQ(clean.rtt_ms, 80.0);
}

TEST(FaultPlan, DegradationScalesInsteadOfReplacing) {
  FaultPlanConfig config;
  config.degradations.push_back({.relay = 4,
                                 .start = 0,
                                 .end = 1000,
                                 .rtt_factor = 2.0,
                                 .loss_add_pct = 10.0,
                                 .jitter_factor = 3.0});
  const FaultPlan plan(std::move(config));
  RelayOption bounce{RelayKind::Bounce, 4, -1};
  PathPerformance perf{80.0, 0.5, 3.0};
  EXPECT_TRUE(plan.apply(bounce, 10, perf));
  EXPECT_DOUBLE_EQ(perf.rtt_ms, 160.0);
  EXPECT_DOUBLE_EQ(perf.loss_pct, 10.5);
  EXPECT_DOUBLE_EQ(perf.jitter_ms, 9.0);
}

TEST(FaultPlan, FlapAlternatesWithinWindow) {
  FaultPlanConfig config;
  config.flaps.push_back({.relay = 0, .start = 0, .end = 10'000, .period = 100,
                          .duty_down = 0.5});
  const FaultPlan plan(std::move(config));
  int down = 0;
  for (TimeSec t = 0; t < 10'000; ++t) {
    if (plan.relay_down(0, t)) ++down;
  }
  // Half of each cycle is down (phase-shifted, but the census is exact).
  EXPECT_EQ(down, 5'000);
  EXPECT_FALSE(plan.relay_down(0, 10'001));  // outside the flap window
}

TEST(FaultPlan, EmptyPlanNeverTouchesSamples) {
  const FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  RelayOption bounce{RelayKind::Bounce, 1, -1};
  PathPerformance perf{80.0, 0.5, 3.0};
  EXPECT_FALSE(plan.apply(bounce, 10, perf));
  EXPECT_DOUBLE_EQ(perf.rtt_ms, 80.0);
}

TEST(FaultPlan, ParsesCompactSpec) {
  const FaultPlan plan = FaultPlan::parse(
      "outage:relay=3,start=86400,end=172800;"
      "flap:relay=2,start=0,end=86400,period=600,duty=0.25;"
      "degrade:relay=1,start=0,end=86400,rtt=2.0,loss=5,jitter=1.5;"
      "seed=7");
  const FaultPlanConfig& c = plan.config();
  ASSERT_EQ(c.outages.size(), 1u);
  EXPECT_EQ(c.outages[0].relay, 3);
  EXPECT_EQ(c.outages[0].start, 86'400);
  EXPECT_EQ(c.outages[0].end, 172'800);
  ASSERT_EQ(c.flaps.size(), 1u);
  EXPECT_EQ(c.flaps[0].period, 600);
  EXPECT_DOUBLE_EQ(c.flaps[0].duty_down, 0.25);
  ASSERT_EQ(c.degradations.size(), 1u);
  EXPECT_DOUBLE_EQ(c.degradations[0].rtt_factor, 2.0);
  EXPECT_DOUBLE_EQ(c.degradations[0].loss_add_pct, 5.0);
  EXPECT_EQ(c.seed, 7u);
}

TEST(FaultPlan, ParseRejectsMalformedSpecs) {
  EXPECT_THROW((void)FaultPlan::parse("bogus:relay=1"), std::runtime_error);
  EXPECT_THROW((void)FaultPlan::parse("outage:relay"), std::runtime_error);
  EXPECT_THROW((void)FaultPlan::parse("seed"), std::runtime_error);
}

// ---------------------------------------------------------- health tracker

RelayHealthConfig fast_health() {
  RelayHealthConfig c;
  c.enabled = true;
  c.degrade_after = 1;
  c.quarantine_after = 2;
  c.quarantine_period = 100;
  c.probation_successes = 2;
  return c;
}

TEST(RelayHealth, ConsecutiveFailuresWalkTheStateMachine) {
  RelayHealthTracker tracker(fast_health());
  const RelayOption bounce{RelayKind::Bounce, 5, -1};
  EXPECT_FALSE(tracker.maybe_blocked());

  auto t1 = tracker.record(bounce, /*failed=*/true, /*now=*/10);
  EXPECT_FALSE(t1.entered_quarantine);
  EXPECT_EQ(tracker.state_of(5), RelayHealthTracker::State::Degraded);
  EXPECT_TRUE(tracker.allows(5, 11));

  auto t2 = tracker.record(bounce, true, 11);
  EXPECT_TRUE(t2.entered_quarantine);
  EXPECT_EQ(tracker.state_of(5), RelayHealthTracker::State::Quarantined);
  EXPECT_TRUE(tracker.maybe_blocked());
  EXPECT_FALSE(tracker.allows(5, 50));
  EXPECT_TRUE(tracker.option_blocked(bounce, 50));
  // Block expires at now + quarantine_period.
  EXPECT_TRUE(tracker.allows(5, 111));
  EXPECT_EQ(tracker.quarantine_events(), 1);
}

TEST(RelayHealth, SuccessResetsTheFailureStreak) {
  RelayHealthTracker tracker(fast_health());
  const RelayOption bounce{RelayKind::Bounce, 0, -1};
  (void)tracker.record(bounce, true, 1);
  (void)tracker.record(bounce, false, 2);  // streak broken
  (void)tracker.record(bounce, true, 3);
  EXPECT_EQ(tracker.state_of(0), RelayHealthTracker::State::Degraded);
  EXPECT_TRUE(tracker.allows(0, 4));
}

TEST(RelayHealth, ProbationReadmitsAfterCleanStreak) {
  RelayHealthTracker tracker(fast_health());
  const RelayOption bounce{RelayKind::Bounce, 2, -1};
  (void)tracker.record(bounce, true, 10);
  (void)tracker.record(bounce, true, 11);  // quarantined until 111
  // First observation after expiry moves to probation.
  (void)tracker.record(bounce, false, 120);
  EXPECT_EQ(tracker.state_of(2), RelayHealthTracker::State::Probation);
  auto t = tracker.record(bounce, false, 121);
  EXPECT_TRUE(t.readmitted);
  EXPECT_EQ(tracker.state_of(2), RelayHealthTracker::State::Healthy);
  EXPECT_FALSE(tracker.maybe_blocked());
  EXPECT_EQ(tracker.readmissions(), 1);
}

TEST(RelayHealth, ProbationFailureEscalatesTheBlock) {
  RelayHealthTracker tracker(fast_health());
  const RelayOption bounce{RelayKind::Bounce, 2, -1};
  (void)tracker.record(bounce, true, 0);
  (void)tracker.record(bounce, true, 1);  // 1st spell: blocked until 101
  auto t = tracker.record(bounce, true, 150);  // probation relapse
  EXPECT_TRUE(t.entered_quarantine);
  // 2nd spell doubles: blocked until 150 + 200.
  EXPECT_FALSE(tracker.allows(2, 349));
  EXPECT_TRUE(tracker.allows(2, 350));
  EXPECT_EQ(tracker.quarantine_events(), 2);
}

TEST(RelayHealth, DirectOptionsRecordNothing) {
  RelayHealthTracker tracker(fast_health());
  const RelayOption direct{RelayKind::Direct, -1, -1};
  for (int i = 0; i < 10; ++i) (void)tracker.record(direct, true, i);
  EXPECT_FALSE(tracker.maybe_blocked());
  const auto counts = tracker.counts(100);
  EXPECT_EQ(counts.quarantined, 0);
}

// ------------------------------------------------- policy health filtering

/// A small world where one bounce relay is the clear bandit winner, so a
/// quarantine visibly forces rerouting.
struct HealthWorld {
  RelayOptionTable options;
  OptionId fast_bounce;   // relay 0: best path
  OptionId slow_bounce;   // relay 1: worse but viable
  std::vector<OptionId> candidates;

  HealthWorld() {
    fast_bounce = options.intern_bounce(0);
    slow_bounce = options.intern_bounce(1);
    candidates = {RelayOptionTable::direct_id(), fast_bounce, slow_bounce};
  }
};

ViaConfig health_policy_config() {
  ViaConfig c;
  c.epsilon = 0.1;
  c.seed = 42;
  c.health = fast_health();
  c.health.quarantine_period = 1'000'000;  // spans the whole test window
  return c;
}

/// Seeds enough history that the bandit has arms, then quarantines relay 0
/// through catastrophic observations and verifies zero subsequent picks
/// ride it while blocked.
TEST(PolicyHealth, QuarantinedRelayReceivesZeroPicks) {
  HealthWorld world;
  ViaPolicy policy(
      world.options, [](RelayId, RelayId) { return PathPerformance{10.0, 0.1, 1.0}; },
      health_policy_config());
  obs::Telemetry telemetry;
  policy.attach_telemetry(&telemetry);

  CallId next_id = 1;
  auto observe = [&](OptionId opt, PathPerformance perf, TimeSec t) {
    Observation o;
    o.id = next_id++;
    o.time = t;
    o.src_as = 1;
    o.dst_as = 2;
    o.option = opt;
    o.perf = perf;
    policy.observe(o);
  };

  // Seed history and refresh so the pair has a model and bandit arms.
  for (int rep = 0; rep < 6; ++rep) {
    for (const OptionId opt : world.candidates) {
      const double c = opt == RelayOptionTable::direct_id() ? 250.0
                       : opt == world.fast_bounce           ? 60.0
                                                            : 120.0;
      observe(opt, {c, c / 100.0, c / 20.0}, rep);
    }
  }
  policy.refresh(kSecondsPerDay);

  // Catastrophic observations quarantine relay 0.
  const TimeSec q_time = kSecondsPerDay + 10;
  observe(world.fast_bounce, {2500.0, 100.0, 120.0}, q_time);
  observe(world.fast_bounce, {2500.0, 100.0, 120.0}, q_time + 1);
  EXPECT_EQ(policy.relay_health().state_of(0), RelayHealthTracker::State::Quarantined);

  // Every subsequent pick inside the block window avoids relay 0.
  for (int i = 0; i < 400; ++i) {
    CallContext ctx;
    ctx.id = next_id++;
    ctx.time = q_time + 2 + i;
    ctx.src_as = 1;
    ctx.dst_as = 2;
    ctx.key_src = 1;
    ctx.key_dst = 2;
    ctx.options = world.candidates;
    const OptionId pick = policy.choose(ctx);
    const RelayOption& ropt = world.options.get(pick);
    EXPECT_FALSE(ropt.kind == RelayKind::Bounce && ropt.a == 0)
        << "call " << i << " rode the quarantined relay";
  }

  const ViaPolicy::Stats s = policy.stats();
  EXPECT_GT(s.quarantine_rerouted, 0);
  // Reason accounting stays total, including the new §6f reasons.
  EXPECT_EQ(s.epsilon_explored + s.bandit_served + s.cold_start_direct + s.budget_denied +
                s.relay_cap_denied + s.quarantine_rerouted + s.outage_fallback_direct,
            s.calls);

  // Telemetry reconciles and the trace carries the new reason.
  obs::MetricsRegistry& r = telemetry.registry;
  EXPECT_EQ(r.counter("policy.decision.quarantined_relay").value(), s.quarantine_rerouted);
  EXPECT_GT(r.counter("policy.health.quarantine_events").value(), 0);
  const auto events = telemetry.decisions.snapshot();
  EXPECT_TRUE(std::any_of(events.begin(), events.end(), [](const obs::DecisionEvent& e) {
    return e.reason == obs::DecisionReason::QuarantinedRelay;
  }));
  policy.attach_telemetry(nullptr);
}

/// With *every* relayed candidate quarantined, the bandit path falls all
/// the way back to direct and says so.
TEST(PolicyHealth, TotalOutageFallsBackToDirect) {
  HealthWorld world;
  ViaConfig config = health_policy_config();
  config.epsilon = 0.0;  // force the bandit path
  ViaPolicy policy(
      world.options, [](RelayId, RelayId) { return PathPerformance{10.0, 0.1, 1.0}; },
      config);
  obs::Telemetry telemetry;
  policy.attach_telemetry(&telemetry);

  CallId next_id = 1;
  auto observe = [&](OptionId opt, PathPerformance perf, TimeSec t) {
    Observation o;
    o.id = next_id++;
    o.time = t;
    o.src_as = 1;
    o.dst_as = 2;
    o.option = opt;
    o.perf = perf;
    policy.observe(o);
  };
  for (int rep = 0; rep < 6; ++rep) {
    for (const OptionId opt : world.candidates) {
      const double c = opt == RelayOptionTable::direct_id() ? 250.0 : 80.0;
      observe(opt, {c, c / 100.0, c / 20.0}, rep);
    }
  }
  policy.refresh(kSecondsPerDay);

  const TimeSec q_time = kSecondsPerDay + 10;
  for (const RelayId relay : {RelayId{0}, RelayId{1}}) {
    const OptionId opt = relay == 0 ? world.fast_bounce : world.slow_bounce;
    observe(opt, {2500.0, 100.0, 120.0}, q_time);
    observe(opt, {2500.0, 100.0, 120.0}, q_time + 1);
    EXPECT_EQ(policy.relay_health().state_of(relay),
              RelayHealthTracker::State::Quarantined);
  }

  for (int i = 0; i < 50; ++i) {
    CallContext ctx;
    ctx.id = next_id++;
    ctx.time = q_time + 2 + i;
    ctx.src_as = 1;
    ctx.dst_as = 2;
    ctx.key_src = 1;
    ctx.key_dst = 2;
    ctx.options = world.candidates;
    EXPECT_EQ(policy.choose(ctx), RelayOptionTable::direct_id());
  }
  const ViaPolicy::Stats s = policy.stats();
  EXPECT_GT(s.outage_fallback_direct, 0);
  EXPECT_EQ(telemetry.registry.counter("policy.decision.fallback_direct_outage").value(),
            s.outage_fallback_direct);
  const auto events = telemetry.decisions.snapshot();
  EXPECT_TRUE(std::any_of(events.begin(), events.end(), [](const obs::DecisionEvent& e) {
    return e.reason == obs::DecisionReason::FallbackDirectOutage;
  }));
  policy.attach_telemetry(nullptr);
}

// ------------------------------------------------------- engine plumbing

class FaultedEngineTest : public ::testing::Test {
 protected:
  FaultedEngineTest() : world_({.num_ases = 30, .num_relays = 6, .seed = 51}), gt_(world_) {
    TraceConfig config;
    config.days = 4;
    config.total_calls = 4'000;
    config.active_pairs = 40;
    config.seed = 9;
    TraceGenerator gen(gt_, config);
    arrivals_ = gen.generate_arrivals();
  }

  [[nodiscard]] RunResult run_via(const FaultPlan* faults, bool health) {
    RunConfig run;
    run.background_relay_fraction = 0.0;
    run.faults = faults;
    ViaConfig via;
    via.seed = 42;
    if (health) {
      via.health = fast_health();
      via.health.quarantine_period = 2 * kSecondsPerDay;
    }
    ViaPolicy policy(
        gt_.option_table(),
        [this](RelayId a, RelayId b) { return gt_.backbone(a, b); }, via);
    SimulationEngine engine(gt_, arrivals_, run);
    return engine.run(policy);
  }

  World world_;
  GroundTruth gt_;
  std::vector<CallArrival> arrivals_;
};

TEST_F(FaultedEngineTest, EmptyPlanIsBitIdenticalToNoPlan) {
  const FaultPlan empty;
  const RunResult without = run_via(nullptr, /*health=*/false);
  const RunResult with_empty = run_via(&empty, /*health=*/false);
  EXPECT_EQ(with_empty.fault_impaired_samples, 0);
  EXPECT_EQ(without.used_direct, with_empty.used_direct);
  EXPECT_EQ(without.used_bounce, with_empty.used_bounce);
  EXPECT_EQ(without.used_transit, with_empty.used_transit);
  // Strongest check: the exact per-call metric stream matches.
  for (std::size_t m = 0; m < kNumMetrics; ++m) {
    EXPECT_EQ(without.values[m], with_empty.values[m]);
  }
}

TEST_F(FaultedEngineTest, OutageRunCompletesAndDrivesTheHealthMachine) {
  // Every relay hard-down from day 1 on: all relayed samples during the
  // window come back outage-grade, so the health machine must quarantine
  // and the policy must keep serving (direct) to the end of the trace.
  FaultPlanConfig config;
  for (RelayId r = 0; r < 6; ++r) {
    config.outages.push_back({r, kSecondsPerDay, 4 * kSecondsPerDay});
  }
  const FaultPlan plan(std::move(config));

  const RunResult result = run_via(&plan, /*health=*/true);
  EXPECT_EQ(result.calls, 4'000);
  EXPECT_GT(result.fault_impaired_samples, 0);

  // Degradations are observable in the run telemetry.
  EXPECT_EQ(result.telemetry.counter_value("engine.fault.impaired_samples"),
            result.fault_impaired_samples);
  EXPECT_GT(result.telemetry.counter_value("policy.health.quarantine_events"), 0);
  const bool rerouted_visible =
      std::any_of(result.decisions.begin(), result.decisions.end(),
                  [](const obs::DecisionEvent& e) {
                    return e.reason == obs::DecisionReason::QuarantinedRelay ||
                           e.reason == obs::DecisionReason::FallbackDirectOutage;
                  });
  EXPECT_TRUE(rerouted_visible);
}

}  // namespace
}  // namespace via
