#include "quality/emodel.h"

#include <gtest/gtest.h>
#include <cmath>

namespace via {
namespace {

TEST(RToMos, Endpoints) {
  EXPECT_DOUBLE_EQ(r_to_mos(-10.0), 1.0);
  EXPECT_DOUBLE_EQ(r_to_mos(0.0), 1.0);
  EXPECT_DOUBLE_EQ(r_to_mos(100.0), 4.5);
  EXPECT_DOUBLE_EQ(r_to_mos(150.0), 4.5);
}

TEST(RToMos, KnownMidpoints) {
  // R=50 -> 1 + 1.75 + 7e-6*50*(-10)*50 = 2.575.
  EXPECT_NEAR(r_to_mos(50.0), 2.575, 1e-6);
  // R=80 -> 1 + 2.8 + 7e-6*80*20*20 = 4.024.
  EXPECT_NEAR(r_to_mos(80.0), 4.024, 1e-6);
}

TEST(RToMos, MonotoneInR) {
  double prev = 0.0;
  for (double r = 0.0; r <= 100.0; r += 5.0) {
    const double mos = r_to_mos(r);
    EXPECT_GE(mos, prev);
    prev = mos;
  }
}

TEST(EModel, PerfectNetworkNearCeiling) {
  const double mos = emodel_mos({0.0, 0.0, 0.0});
  EXPECT_GT(mos, 4.2);
}

TEST(EModel, TerribleNetworkNearFloor) {
  const double mos = emodel_mos({1500.0, 30.0, 100.0});
  EXPECT_LT(mos, 1.6);
}

TEST(EModel, DelayKneeAt177ms) {
  // The Id term steepens past a one-way delay of 177.3 ms; crossing the
  // knee must cost more R than the same step before it.
  EModelParams params;
  params.jitter_buffer_factor = 0.0;
  params.codec_delay_ms = 0.0;
  const double r1 = emodel_r_factor({200.0, 0.0, 0.0}, params);   // d = 100
  const double r2 = emodel_r_factor({300.0, 0.0, 0.0}, params);   // d = 150
  const double r3 = emodel_r_factor({500.0, 0.0, 0.0}, params);   // d = 250
  const double r4 = emodel_r_factor({600.0, 0.0, 0.0}, params);   // d = 300
  const double slope_before = (r1 - r2) / 50.0;
  const double slope_after = (r3 - r4) / 50.0;
  EXPECT_GT(slope_after, slope_before * 2.0);
}

// Property sweeps: MOS is monotone non-increasing in each metric.
class EModelMonotone : public ::testing::TestWithParam<Metric> {};

TEST_P(EModelMonotone, MosDecreasesAsMetricWorsens) {
  const Metric m = GetParam();
  PathPerformance p{120.0, 0.5, 5.0};
  double prev = 10.0;
  const double hi = m == Metric::Loss ? 20.0 : (m == Metric::Rtt ? 1000.0 : 80.0);
  for (int i = 0; i <= 20; ++i) {
    p.set(m, hi * i / 20.0);
    const double mos = emodel_mos(p);
    EXPECT_LE(mos, prev + 1e-12) << metric_name(m) << "=" << p.get(m);
    prev = mos;
  }
}

INSTANTIATE_TEST_SUITE_P(AllMetrics, EModelMonotone,
                         ::testing::Values(Metric::Rtt, Metric::Loss, Metric::Jitter));

TEST(EModel, LossImpairmentShape) {
  // Cole-Rosenbluth: Ie = 30 ln(1 + 15 e); at 5% loss Ie ~ 16.8.
  const double r_clean = emodel_r_factor({0.0, 0.0, 0.0});
  const double r_lossy = emodel_r_factor({0.0, 5.0, 0.0});
  EXPECT_NEAR(r_clean - r_lossy, 30.0 * std::log(1.0 + 15.0 * 0.05), 1e-6);
}

TEST(EModel, JitterActsThroughBufferAndLateLoss) {
  const double good = emodel_mos({100.0, 0.0, 1.0});
  const double bad = emodel_mos({100.0, 0.0, 40.0});
  EXPECT_GT(good - bad, 0.2);
}

TEST(EModel, PoorThresholdCallsScoreClearlyWorse) {
  // A call at all three poor thresholds should rate well below a clean one.
  const double clean = emodel_mos({80.0, 0.1, 3.0});
  const double at_thresholds = emodel_mos({320.0, 1.2, 12.0});
  EXPECT_GT(clean - at_thresholds, 0.3);
}

}  // namespace
}  // namespace via
