// Concurrency tests for the split controller (ModelSnapshot +
// PairStateStore + shared-lock RPC serving):
//   - golden replays proving the refactor kept single-threaded decisions
//     bit-identical (FNV-1a hash over every chosen option),
//   - telemetry reason counters reconciling exactly with policy stats,
//   - multi-threaded choose/observe hammering with interleaved refreshes,
//   - the relay-share cap invariant under contention,
//   - multi-client RPC stress and handler-thread reaping.
// The multi-threaded tests here also run under TSan in CI (tools/ci.sh).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <shared_mutex>
#include <thread>
#include <vector>

#include "core/via_policy.h"
#include "obs/telemetry.h"
#include "rpc/client.h"
#include "rpc/server.h"
#include "util/rng.h"

namespace via {
namespace {

// ------------------------------------------------------- golden replays

/// A fixed three-period serve/observe/refresh scenario.  The expected
/// hashes and counters below were captured from the pre-split ViaPolicy
/// (single monolithic class, one RNG stream, coarse locking); the split
/// implementation must reproduce them bit for bit with the default single
/// serving stripe.
struct GoldenScenario {
  RelayOptionTable options;
  std::vector<OptionId> bounces;
  OptionId transit01 = kInvalidOption;
  OptionId transit23 = kInvalidOption;
  std::vector<std::vector<OptionId>> pair_options;  // candidate set per pair
  std::vector<std::pair<AsId, AsId>> pairs;

  GoldenScenario() {
    for (RelayId r = 0; r < 6; ++r) bounces.push_back(options.intern_bounce(r));
    transit01 = options.intern_transit(0, 1);
    transit23 = options.intern_transit(2, 3);
    pairs = {{1, 2}, {3, 4}, {5, 6}, {7, 8}};
    const OptionId direct = RelayOptionTable::direct_id();
    pair_options = {
        {direct, bounces[0], bounces[1], transit01},
        {direct, bounces[2], bounces[3], transit23},
        {direct, bounces[4], bounces[5]},
        {direct, bounces[0], bounces[3], transit01, transit23},
    };
  }

  [[nodiscard]] ViaConfig constrained_config() const {
    ViaConfig c;
    c.epsilon = 0.1;
    c.seed = 42;
    c.budget = {.fraction = 0.3, .aware = true};
    c.relay_share_cap = 0.4;
    return c;
  }

  [[nodiscard]] ViaConfig unconstrained_config() const {
    ViaConfig c;
    c.epsilon = 0.1;
    c.seed = 42;
    return c;
  }

  [[nodiscard]] static BackboneFn backbone() {
    return [](RelayId, RelayId) { return PathPerformance{10.0, 0.1, 1.0}; };
  }

  /// Deterministic synthetic cost for (pair, option, period, step): the
  /// direct path is slow, bounce quality varies per pair/period.
  [[nodiscard]] static double cost(std::size_t pair_idx, OptionId opt, int period, int step) {
    if (opt == RelayOptionTable::direct_id()) {
      return 260.0 + 5.0 * static_cast<double>(pair_idx) + static_cast<double>(step % 7);
    }
    const auto base = 90.0 + 13.0 * static_cast<double>((opt * 7 + period * 3) % 11);
    return base + static_cast<double>(pair_idx) + static_cast<double>(step % 5);
  }

  /// Runs the full scenario; returns an FNV-1a hash of every chosen option
  /// in sequence (the strongest possible bit-identical signature).  With
  /// `split_refresh` the periodic rebuild goes through the §6e
  /// prepare/commit protocol instead of the monolithic refresh() — the
  /// hash must not notice.
  std::uint64_t run(ViaPolicy& policy, bool split_refresh = false) {
    std::uint64_t fnv = 0xcbf29ce484222325ULL;
    auto fold = [&fnv](std::uint64_t v) {
      fnv ^= v;
      fnv *= 0x100000001b3ULL;
    };
    CallId next_id = 1;
    for (int period = 0; period < 3; ++period) {
      // Seed history: every pair observes every candidate a few times.
      for (std::size_t p = 0; p < pairs.size(); ++p) {
        for (int rep = 0; rep < 5; ++rep) {
          for (const OptionId opt : pair_options[p]) {
            Observation o;
            o.id = next_id++;
            o.time = period * kSecondsPerDay + rep;
            o.src_as = pairs[p].first;
            o.dst_as = pairs[p].second;
            o.option = opt;
            const double c = cost(p, opt, period, rep);
            o.perf = {c, c / 100.0, c / 20.0};
            policy.observe(o);
          }
        }
      }
      if (split_refresh) {
        policy.prepare_refresh((period + 1) * kSecondsPerDay);
        policy.commit_refresh((period + 1) * kSecondsPerDay);
      } else {
        policy.refresh((period + 1) * kSecondsPerDay);
      }
      // Serve a burst of calls round-robin over the pairs; report back a
      // deterministic measurement for whatever option was chosen.
      for (int step = 0; step < 100; ++step) {
        const std::size_t p = static_cast<std::size_t>(step) % pairs.size();
        CallContext ctx;
        ctx.id = next_id++;
        ctx.time = (period + 1) * kSecondsPerDay + step;
        ctx.src_as = pairs[p].first;
        ctx.dst_as = pairs[p].second;
        ctx.key_src = ctx.src_as;
        ctx.key_dst = ctx.dst_as;
        ctx.options = pair_options[p];
        const OptionId pick = policy.choose(ctx);
        fold(static_cast<std::uint64_t>(static_cast<std::uint32_t>(pick)));
        Observation o;
        o.id = ctx.id;
        o.time = ctx.time;
        o.src_as = ctx.src_as;
        o.dst_as = ctx.dst_as;
        o.option = pick;
        const double c = cost(p, pick, period, step) + 1.0;
        o.perf = {c, c / 100.0, c / 20.0};
        policy.observe(o);
      }
    }
    return fnv;
  }

  [[nodiscard]] CallContext context_for(std::size_t pair_idx) const {
    CallContext ctx;
    ctx.src_as = pairs[pair_idx].first;
    ctx.dst_as = pairs[pair_idx].second;
    ctx.key_src = ctx.src_as;
    ctx.key_dst = ctx.dst_as;
    ctx.options = pair_options[pair_idx];
    return ctx;
  }
};

// Captured from the pre-refactor implementation (see header comment).
constexpr std::uint64_t kConstrainedGoldenHash = 0x081ebbb1bb3f2bf0ULL;
constexpr std::uint64_t kUnconstrainedGoldenHash = 0x10d901253bfb3963ULL;

TEST(GoldenReplay, ConstrainedBitIdentical) {
  GoldenScenario scenario;
  ViaPolicy policy(scenario.options, GoldenScenario::backbone(), scenario.constrained_config());
  EXPECT_EQ(scenario.run(policy), kConstrainedGoldenHash);

  const ViaPolicy::Stats s = policy.stats();
  EXPECT_EQ(s.calls, 300);
  EXPECT_EQ(s.epsilon_explored, 23);
  EXPECT_EQ(s.bandit_served, 30);
  EXPECT_EQ(s.cold_start_direct, 0);
  EXPECT_EQ(s.budget_denied, 208);
  EXPECT_EQ(s.relay_cap_denied, 39);
  EXPECT_EQ(s.chose_direct, 255);
  EXPECT_EQ(s.chose_bounce, 13);
  EXPECT_EQ(s.chose_transit, 32);

  // top_k_for is const now that the per-pair model lives in the published
  // immutable snapshot.
  const ViaPolicy& const_policy = policy;
  for (std::size_t p = 0; p < scenario.pairs.size(); ++p) {
    EXPECT_EQ(const_policy.top_k_for(scenario.context_for(p)).size(), 1u) << "pair " << p;
  }
}

TEST(GoldenReplay, UnconstrainedBitIdentical) {
  GoldenScenario scenario;
  ViaPolicy policy(scenario.options, GoldenScenario::backbone(),
                   scenario.unconstrained_config());
  EXPECT_EQ(scenario.run(policy), kUnconstrainedGoldenHash);

  const ViaPolicy::Stats s = policy.stats();
  EXPECT_EQ(s.calls, 300);
  EXPECT_EQ(s.epsilon_explored, 33);
  EXPECT_EQ(s.bandit_served, 267);
  EXPECT_EQ(s.cold_start_direct, 0);
  EXPECT_EQ(s.budget_denied, 0);
  EXPECT_EQ(s.relay_cap_denied, 0);
  EXPECT_EQ(s.chose_direct, 8);
  EXPECT_EQ(s.chose_bounce, 166);
  EXPECT_EQ(s.chose_transit, 126);

  const ViaPolicy& const_policy = policy;
  const std::vector<std::size_t> expected_topk = {1, 3, 1, 1};
  for (std::size_t p = 0; p < scenario.pairs.size(); ++p) {
    EXPECT_EQ(const_policy.top_k_for(scenario.context_for(p)).size(), expected_topk[p])
        << "pair " << p;
  }
}

TEST(GoldenReplay, SplitRefreshBitIdentical) {
  // The prepare/commit split replays the exact same decisions as the
  // monolithic refresh — both configs, against the pre-refactor hashes.
  {
    GoldenScenario scenario;
    ViaPolicy policy(scenario.options, GoldenScenario::backbone(),
                     scenario.constrained_config());
    EXPECT_EQ(scenario.run(policy, /*split_refresh=*/true), kConstrainedGoldenHash);
  }
  {
    GoldenScenario scenario;
    ViaPolicy policy(scenario.options, GoldenScenario::backbone(),
                     scenario.unconstrained_config());
    EXPECT_EQ(scenario.run(policy, /*split_refresh=*/true), kUnconstrainedGoldenHash);
  }
}

TEST(GoldenReplay, PrewarmedMemosDecideIdentically) {
  // Pre-warming only pre-builds memo entries that are pure functions of
  // (snapshot, pair, candidate set); every decision — and therefore the
  // golden hash — is unchanged.
  GoldenScenario scenario;
  ViaConfig config = scenario.unconstrained_config();
  config.prewarm_pairs = true;
  ViaPolicy policy(scenario.options, GoldenScenario::backbone(), config);
  EXPECT_EQ(scenario.run(policy, /*split_refresh=*/true), kUnconstrainedGoldenHash);
}

TEST(GoldenReplay, ParallelSolveKeepsGoldenHash) {
  // The parallel tomography solve is bit-identical to serial (segment
  // partitioning, see tomography.h), so a wide solver must replay the same
  // golden hash as solve_threads = 1.
  GoldenScenario scenario;
  ViaConfig config = scenario.constrained_config();
  config.predictor.tomography.solve_threads = 4;
  ViaPolicy policy(scenario.options, GoldenScenario::backbone(), config);
  EXPECT_EQ(scenario.run(policy), kConstrainedGoldenHash);
}

/// §6f: an *enabled* health tracker that never sees a failure must be a
/// pure no-op on the decision flow — same RNG draws, same picks, same
/// hash as the pre-health goldens.  (Scenario observations top out around
/// 267ms RTT / 2.7% loss, far under the catastrophic thresholds.)
TEST(GoldenReplay, HealthEnabledHealthyFleetBitIdentical) {
  GoldenScenario scenario;
  {
    ViaConfig config = scenario.constrained_config();
    config.health.enabled = true;
    ViaPolicy policy(scenario.options, GoldenScenario::backbone(), config);
    EXPECT_EQ(scenario.run(policy), kConstrainedGoldenHash);
    EXPECT_EQ(policy.stats().quarantine_rerouted, 0);
  }
  {
    ViaConfig config = scenario.unconstrained_config();
    config.health.enabled = true;
    ViaPolicy policy(scenario.options, GoldenScenario::backbone(), config);
    EXPECT_EQ(scenario.run(policy), kUnconstrainedGoldenHash);
  }
}

TEST(GoldenReplay, TelemetryReasonCountersReconcileWithStats) {
  GoldenScenario scenario;
  ViaPolicy policy(scenario.options, GoldenScenario::backbone(), scenario.constrained_config());
  obs::Telemetry telemetry;
  policy.attach_telemetry(&telemetry);
  // Attached telemetry must not perturb decisions.
  EXPECT_EQ(scenario.run(policy), kConstrainedGoldenHash);
  policy.attach_telemetry(nullptr);

  const ViaPolicy::Stats s = policy.stats();
  obs::MetricsRegistry& r = telemetry.registry;
  EXPECT_EQ(r.counter("policy.decision.ucb").value(), s.bandit_served);
  EXPECT_EQ(r.counter("policy.decision.epsilon_explore").value(), s.epsilon_explored);
  EXPECT_EQ(r.counter("policy.decision.budget_veto").value(),
            s.budget_denied + s.relay_cap_denied);
  EXPECT_EQ(r.counter("policy.decision.fallback_direct").value(), s.cold_start_direct);
  // Every routed call is tallied under exactly one reason and one kind.
  EXPECT_EQ(s.epsilon_explored + s.bandit_served + s.cold_start_direct + s.budget_denied +
                s.relay_cap_denied,
            s.calls);
  EXPECT_EQ(s.chose_direct + s.chose_bounce + s.chose_transit, s.calls);
}

// --------------------------------------------- concurrent serving state

/// A wider option universe for the hammer tests: 32 AS pairs, each with a
/// small distinct candidate set over 10 relays.
struct HammerWorld {
  RelayOptionTable options;
  std::vector<std::pair<AsId, AsId>> pairs;
  std::vector<std::vector<OptionId>> pair_options;

  HammerWorld() {
    std::vector<OptionId> bounces;
    for (RelayId r = 0; r < 10; ++r) bounces.push_back(options.intern_bounce(r));
    const OptionId t01 = options.intern_transit(0, 1);
    const OptionId t23 = options.intern_transit(2, 3);
    const OptionId direct = RelayOptionTable::direct_id();
    for (int p = 0; p < 32; ++p) {
      pairs.emplace_back(static_cast<AsId>(100 + p), static_cast<AsId>(200 + p));
      std::vector<OptionId> opts = {direct, bounces[static_cast<std::size_t>(p) % 10],
                                    bounces[static_cast<std::size_t>(p + 3) % 10]};
      if (p % 2 == 0) opts.push_back(t01);
      if (p % 3 == 0) opts.push_back(t23);
      pair_options.push_back(std::move(opts));
    }
  }

  [[nodiscard]] CallContext context_for(std::size_t pair_idx, CallId id, TimeSec time) const {
    CallContext ctx;
    ctx.id = id;
    ctx.time = time;
    ctx.src_as = pairs[pair_idx].first;
    ctx.dst_as = pairs[pair_idx].second;
    ctx.key_src = ctx.src_as;
    ctx.key_dst = ctx.dst_as;
    ctx.options = pair_options[pair_idx];
    return ctx;
  }

  [[nodiscard]] static double cost(std::size_t pair_idx, OptionId opt) {
    if (opt == RelayOptionTable::direct_id()) return 200.0 + static_cast<double>(pair_idx);
    return 80.0 + 11.0 * static_cast<double>(opt % 13) + static_cast<double>(pair_idx);
  }
};

/// N worker threads hammer choose+observe while the main thread runs
/// periodic refreshes; workers take the policy lock shared (the RPC
/// server's locking discipline for a concurrent-safe policy), refreshes
/// take it exclusive.  Afterwards the decision-reason counters must sum
/// exactly to the number of routed calls.
TEST(ConcurrentPolicy, HammerChooseObserveWithRefreshes) {
  HammerWorld world;
  ViaConfig config;
  config.epsilon = 0.1;
  config.seed = 7;
  config.serving_stripes = 16;
  ViaPolicy policy(
      world.options, [](RelayId, RelayId) { return PathPerformance{5.0, 0.05, 0.5}; },
      config);

  constexpr int kThreads = 8;
  constexpr int kCallsPerThread = 2000;
  std::shared_mutex policy_lock;  // refresh exclusion, as in the RPC server
  std::atomic<CallId> next_id{1};
  std::atomic<bool> stop_refreshing{false};

  auto worker = [&](int t) {
    Rng rng(1000 + static_cast<std::uint64_t>(t));
    for (int i = 0; i < kCallsPerThread; ++i) {
      const auto p = static_cast<std::size_t>(rng.uniform_index(world.pairs.size()));
      const CallId id = next_id.fetch_add(1);
      const CallContext ctx = world.context_for(p, id, static_cast<TimeSec>(i));
      OptionId pick = kInvalidOption;
      {
        const std::shared_lock lock(policy_lock);
        pick = policy.choose(ctx);
      }
      Observation o;
      o.id = id;
      o.time = ctx.time;
      o.src_as = ctx.src_as;
      o.dst_as = ctx.dst_as;
      o.option = pick;
      const double c = HammerWorld::cost(p, pick);
      o.perf = {c, c / 100.0, c / 20.0};
      {
        const std::shared_lock lock(policy_lock);
        policy.observe(o);
      }
    }
  };

  std::thread refresher([&] {
    while (!stop_refreshing.load()) {
      {
        const std::unique_lock lock(policy_lock);
        policy.refresh(0);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) threads.emplace_back(worker, t);
  for (auto& t : threads) t.join();
  stop_refreshing.store(true);
  refresher.join();

  const ViaPolicy::Stats s = policy.stats();
  EXPECT_EQ(s.calls, kThreads * kCallsPerThread);
  EXPECT_EQ(s.epsilon_explored + s.bandit_served + s.cold_start_direct + s.budget_denied +
                s.relay_cap_denied,
            s.calls);
  EXPECT_EQ(s.chose_direct + s.chose_bounce + s.chose_transit, s.calls);
}

/// Same hammer, but racing the §6e background pipeline: a builder thread
/// runs prepare_refresh() under the *shared* lock (concurrent with the
/// choose/observe workers, exactly the RPC server's discipline) and only
/// commit_refresh() exclusively.  Pre-warm and the multi-threaded solver
/// are both on, so the prepare path TSan covers is the full production
/// one.
TEST(ConcurrentPolicy, HammerRacesBackgroundPrepare) {
  HammerWorld world;
  ViaConfig config;
  config.epsilon = 0.1;
  config.seed = 13;
  config.serving_stripes = 16;
  config.prewarm_pairs = true;
  config.predictor.tomography.solve_threads = 2;
  ViaPolicy policy(
      world.options, [](RelayId, RelayId) { return PathPerformance{5.0, 0.05, 0.5}; },
      config);

  constexpr int kThreads = 4;
  constexpr int kCallsPerThread = 1500;
  std::shared_mutex policy_lock;
  std::atomic<CallId> next_id{1};
  std::atomic<bool> stop_refreshing{false};

  auto worker = [&](int t) {
    Rng rng(2000 + static_cast<std::uint64_t>(t));
    for (int i = 0; i < kCallsPerThread; ++i) {
      const auto p = static_cast<std::size_t>(rng.uniform_index(world.pairs.size()));
      const CallId id = next_id.fetch_add(1);
      const CallContext ctx = world.context_for(p, id, static_cast<TimeSec>(i));
      OptionId pick = kInvalidOption;
      {
        const std::shared_lock lock(policy_lock);
        pick = policy.choose(ctx);
      }
      Observation o;
      o.id = id;
      o.time = ctx.time;
      o.src_as = ctx.src_as;
      o.dst_as = ctx.dst_as;
      o.option = pick;
      const double c = HammerWorld::cost(p, pick);
      o.perf = {c, c / 100.0, c / 20.0};
      {
        const std::shared_lock lock(policy_lock);
        policy.observe(o);
      }
    }
  };

  std::thread builder([&] {
    TimeSec now = 0;
    while (!stop_refreshing.load()) {
      {
        const std::shared_lock lock(policy_lock);  // serving keeps flowing
        policy.prepare_refresh(now);
      }
      {
        const std::unique_lock lock(policy_lock);  // just the pointer swap
        policy.commit_refresh(now);
      }
      now += kSecondsPerDay;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) threads.emplace_back(worker, t);
  for (auto& t : threads) t.join();
  stop_refreshing.store(true);
  builder.join();

  const ViaPolicy::Stats s = policy.stats();
  EXPECT_EQ(s.calls, kThreads * kCallsPerThread);
  EXPECT_EQ(s.epsilon_explored + s.bandit_served + s.cold_start_direct + s.budget_denied +
                s.relay_cap_denied,
            s.calls);
  EXPECT_EQ(s.chose_direct + s.chose_bounce + s.chose_transit, s.calls);
}

/// §6f under contention: eight serving threads hammer choose/observe while
/// a saboteur thread concurrently flips two relays in and out of
/// quarantine with bursts of catastrophic / clean observations.  TSan
/// covers the tracker's relaxed hot-path load racing its locked
/// transitions; the reason accounting must stay exactly total, now
/// including the health reasons.
TEST(ConcurrentPolicy, HammerWithConcurrentQuarantineFlips) {
  HammerWorld world;
  ViaConfig config;
  config.epsilon = 0.1;
  config.seed = 7;
  config.serving_stripes = 16;
  config.health.enabled = true;
  config.health.degrade_after = 1;
  config.health.quarantine_after = 2;
  config.health.quarantine_period = 40;  // short: expires within the run
  config.health.probation_successes = 1;
  ViaPolicy policy(
      world.options, [](RelayId, RelayId) { return PathPerformance{5.0, 0.05, 0.5}; },
      config);

  constexpr int kThreads = 8;
  constexpr int kCallsPerThread = 1500;
  std::shared_mutex policy_lock;
  std::atomic<CallId> next_id{1};
  std::atomic<bool> stop_saboteur{false};

  auto worker = [&](int t) {
    Rng rng(3000 + static_cast<std::uint64_t>(t));
    for (int i = 0; i < kCallsPerThread; ++i) {
      const auto p = static_cast<std::size_t>(rng.uniform_index(world.pairs.size()));
      const CallId id = next_id.fetch_add(1);
      const CallContext ctx = world.context_for(p, id, static_cast<TimeSec>(i));
      OptionId pick = kInvalidOption;
      {
        const std::shared_lock lock(policy_lock);
        pick = policy.choose(ctx);
      }
      Observation o;
      o.id = id;
      o.time = ctx.time;
      o.src_as = ctx.src_as;
      o.dst_as = ctx.dst_as;
      o.option = pick;
      const double c = HammerWorld::cost(p, pick);
      o.perf = {c, c / 100.0, c / 20.0};
      {
        const std::shared_lock lock(policy_lock);
        policy.observe(o);
      }
    }
  };

  // Alternating catastrophic and clean bursts for two bounce options:
  // quarantine, expire, probation, re-admit, re-quarantine — the full
  // state machine, concurrent with serving.
  std::thread saboteur([&] {
    TimeSec now = 0;
    while (!stop_saboteur.load()) {
      for (const std::size_t p : {std::size_t{0}, std::size_t{1}}) {
        const OptionId victim = world.pair_options[p][1];  // a bounce option
        for (int burst = 0; burst < 3; ++burst) {
          Observation o;
          o.id = next_id.fetch_add(1);
          o.time = now;
          o.src_as = world.pairs[p].first;
          o.dst_as = world.pairs[p].second;
          o.option = victim;
          o.perf = burst < 2 ? PathPerformance{5000.0, 100.0, 50.0}
                             : PathPerformance{50.0, 0.1, 1.0};
          const std::shared_lock lock(policy_lock);
          policy.observe(o);
        }
      }
      now += 25;  // walks through block expiries
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) threads.emplace_back(worker, t);
  for (auto& t : threads) t.join();
  stop_saboteur.store(true);
  saboteur.join();

  const ViaPolicy::Stats s = policy.stats();
  EXPECT_EQ(s.calls, kThreads * kCallsPerThread);
  EXPECT_EQ(s.epsilon_explored + s.bandit_served + s.cold_start_direct + s.budget_denied +
                s.relay_cap_denied + s.quarantine_rerouted + s.outage_fallback_direct,
            s.calls);
  EXPECT_EQ(s.chose_direct + s.chose_bounce + s.chose_transit, s.calls);
  // The saboteur's bursts actually drove the state machine.
  EXPECT_GT(policy.relay_health().quarantine_events(), 0);
}

/// Pre-warm actually front-loads the per-pair builds: after a prepared +
/// committed refresh, every pair that carried traffic last period already
/// has its memo in the *new* snapshot, before any call touches it.
TEST(ConcurrentPolicy, PrewarmBuildsPairModelsBeforeFirstCall) {
  HammerWorld world;
  ViaConfig config;
  config.epsilon = 0.0;
  config.seed = 5;
  config.serving_stripes = 16;
  config.prewarm_pairs = true;
  ViaPolicy policy(
      world.options, [](RelayId, RelayId) { return PathPerformance{5.0, 0.05, 0.5}; },
      config);

  // Period 1: observe every candidate, refresh, then serve one call per
  // pair so the serving state records each pair's pre-warm context.
  CallId next_id = 1;
  for (std::size_t p = 0; p < world.pairs.size(); ++p) {
    for (const OptionId opt : world.pair_options[p]) {
      for (int rep = 0; rep < 3; ++rep) {
        Observation o;
        o.id = next_id++;
        o.time = rep;
        o.src_as = world.pairs[p].first;
        o.dst_as = world.pairs[p].second;
        o.option = opt;
        const double c = HammerWorld::cost(p, opt);
        o.perf = {c, c / 100.0, c / 20.0};
        policy.observe(o);
      }
    }
  }
  policy.refresh(kSecondsPerDay);
  for (std::size_t p = 0; p < world.pairs.size(); ++p) {
    (void)policy.choose(world.context_for(p, next_id++, kSecondsPerDay + 1));
  }

  // Period 2: more traffic, then the split refresh.  Immediately after the
  // commit — zero post-refresh calls — the published snapshot must already
  // hold a model for every active pair.
  for (std::size_t p = 0; p < world.pairs.size(); ++p) {
    Observation o;
    o.id = next_id++;
    o.time = kSecondsPerDay + 100;
    o.src_as = world.pairs[p].first;
    o.dst_as = world.pairs[p].second;
    o.option = world.pair_options[p][1];
    o.perf = {90.0, 0.9, 4.5};
    policy.observe(o);
  }
  policy.prepare_refresh(2 * kSecondsPerDay);
  policy.commit_refresh(2 * kSecondsPerDay);
  EXPECT_EQ(policy.model()->period(), 2u);
  EXPECT_GE(policy.model()->pair_models_built(), world.pairs.size());

  // And the pre-built models are what lazy fill would have produced: the
  // pick for each pair matches a fresh identically-configured policy that
  // replays the same sequence without pre-warming.
  ViaConfig lazy_config = config;
  lazy_config.prewarm_pairs = false;
  ViaPolicy lazy(
      world.options, [](RelayId, RelayId) { return PathPerformance{5.0, 0.05, 0.5}; },
      lazy_config);
  CallId lazy_id = 1;
  for (std::size_t p = 0; p < world.pairs.size(); ++p) {
    for (const OptionId opt : world.pair_options[p]) {
      for (int rep = 0; rep < 3; ++rep) {
        Observation o;
        o.id = lazy_id++;
        o.time = rep;
        o.src_as = world.pairs[p].first;
        o.dst_as = world.pairs[p].second;
        o.option = opt;
        const double c = HammerWorld::cost(p, opt);
        o.perf = {c, c / 100.0, c / 20.0};
        lazy.observe(o);
      }
    }
  }
  lazy.refresh(kSecondsPerDay);
  for (std::size_t p = 0; p < world.pairs.size(); ++p) {
    (void)lazy.choose(world.context_for(p, lazy_id++, kSecondsPerDay + 1));
  }
  for (std::size_t p = 0; p < world.pairs.size(); ++p) {
    Observation o;
    o.id = lazy_id++;
    o.time = kSecondsPerDay + 100;
    o.src_as = world.pairs[p].first;
    o.dst_as = world.pairs[p].second;
    o.option = world.pair_options[p][1];
    o.perf = {90.0, 0.9, 4.5};
    lazy.observe(o);
  }
  lazy.refresh(2 * kSecondsPerDay);
  EXPECT_EQ(lazy.model()->pair_models_built(), 0u);  // still all-lazy
  for (std::size_t p = 0; p < world.pairs.size(); ++p) {
    const CallContext warm_ctx = world.context_for(p, 900000 + p, 2 * kSecondsPerDay + 1);
    const CallContext lazy_ctx = world.context_for(p, 900000 + p, 2 * kSecondsPerDay + 1);
    EXPECT_EQ(policy.choose(warm_ctx), lazy.choose(lazy_ctx)) << "pair " << p;
  }
}

/// With the relay-share cap enabled, no relay may carry more than
/// cap * (relayed calls) + warm-up slack — tallied *client-side* from the
/// returned picks, so the check-then-account critical section is what is
/// actually under test.
TEST(ConcurrentPolicy, RelayShareCapHoldsUnderContention) {
  HammerWorld world;
  ViaConfig config;
  config.epsilon = 0.2;  // plenty of relayed traffic
  config.seed = 11;
  config.serving_stripes = 16;
  config.relay_share_cap = 0.25;
  ViaPolicy policy(
      world.options, [](RelayId, RelayId) { return PathPerformance{5.0, 0.05, 0.5}; },
      config);

  // Warm the model so the bandit actually relays.
  CallId next_id = 1;
  for (std::size_t p = 0; p < world.pairs.size(); ++p) {
    for (const OptionId opt : world.pair_options[p]) {
      for (int rep = 0; rep < 3; ++rep) {
        Observation o;
        o.id = next_id++;
        o.time = rep;
        o.src_as = world.pairs[p].first;
        o.dst_as = world.pairs[p].second;
        o.option = opt;
        const double c = HammerWorld::cost(p, opt);
        o.perf = {c, c / 100.0, c / 20.0};
        policy.observe(o);
      }
    }
  }
  policy.refresh(kSecondsPerDay);

  constexpr int kThreads = 8;
  constexpr int kCallsPerThread = 1500;
  std::atomic<CallId> ids{100000};
  // Client-side per-relay tally: bounce loads its relay, transit both.
  constexpr std::size_t kMaxRelay = 16;
  std::vector<std::atomic<std::int64_t>> load(kMaxRelay);
  std::atomic<std::int64_t> relayed{0};

  auto worker = [&](int t) {
    Rng rng(500 + static_cast<std::uint64_t>(t));
    for (int i = 0; i < kCallsPerThread; ++i) {
      const auto p = static_cast<std::size_t>(rng.uniform_index(world.pairs.size()));
      const CallContext ctx =
          world.context_for(p, ids.fetch_add(1), kSecondsPerDay + static_cast<TimeSec>(i));
      const OptionId pick = policy.choose(ctx);
      const RelayOption& o = world.options.get(pick);
      if (o.kind == RelayKind::Direct) continue;
      relayed.fetch_add(1);
      load[static_cast<std::size_t>(o.a)].fetch_add(1);
      if (o.kind == RelayKind::Transit) load[static_cast<std::size_t>(o.b)].fetch_add(1);
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) threads.emplace_back(worker, t);
  for (auto& t : threads) t.join();

  const auto total = static_cast<double>(relayed.load());
  ASSERT_GT(total, 100.0);  // the scenario must actually relay
  for (std::size_t r = 0; r < kMaxRelay; ++r) {
    // 20-call warm-up window + the final accounted call of slack.
    EXPECT_LE(static_cast<double>(load[r].load()), 0.25 * total + 21.0) << "relay " << r;
  }
}

// ----------------------------------------------------- RPC server layer

TEST(ConcurrentRpc, MultiClientStressMatchesServerCounts) {
  HammerWorld world;
  ViaConfig config;
  config.epsilon = 0.1;
  config.seed = 3;
  config.serving_stripes = 16;
  ViaPolicy policy(
      world.options, [](RelayId, RelayId) { return PathPerformance{5.0, 0.05, 0.5}; },
      config);
  ControllerServer server(policy);
  server.start();

  constexpr int kClients = 4;
  constexpr int kCallsPerClient = 250;
  std::atomic<std::int64_t> client_decisions{0};
  std::atomic<std::int64_t> client_reports{0};

  auto client_fn = [&](int t) {
    ControllerClient client(server.port());
    Rng rng(900 + static_cast<std::uint64_t>(t));
    for (int i = 0; i < kCallsPerClient; ++i) {
      const auto p = static_cast<std::size_t>(rng.uniform_index(world.pairs.size()));
      DecisionRequest req;
      req.call_id = static_cast<CallId>(t) * 1000000 + static_cast<CallId>(i);
      req.time = i;
      req.src_as = world.pairs[p].first;
      req.dst_as = world.pairs[p].second;
      req.options = world.pair_options[p];
      const OptionId pick = client.request_decision(req);
      client_decisions.fetch_add(1);
      Observation o;
      o.id = req.call_id;
      o.time = req.time;
      o.src_as = req.src_as;
      o.dst_as = req.dst_as;
      o.option = pick;
      const double c = HammerWorld::cost(p, pick);
      o.perf = {c, c / 100.0, c / 20.0};
      client.report(o);
      client_reports.fetch_add(1);
      if (t == 0 && i % 100 == 99) client.refresh((i / 100) * kSecondsPerDay);
    }
    client.shutdown();
  };

  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int t = 0; t < kClients; ++t) clients.emplace_back(client_fn, t);
  for (auto& t : clients) t.join();

  EXPECT_EQ(server.decisions_served(), client_decisions.load());
  EXPECT_EQ(server.reports_received(), client_reports.load());
  EXPECT_EQ(server.decisions_served(), kClients * kCallsPerClient);

  // The live-load gauge is registered and visible over GetStats.
  ControllerClient stats_client(server.port());
  const std::string stats = stats_client.get_stats(obs::StatsFormat::Json);
  EXPECT_NE(stats.find("rpc.server.inflight"), std::string::npos);
  // The exclusive-section histogram is registered and saw the refreshes
  // that went through the background builder.
  EXPECT_NE(stats.find("rpc.server.refresh_stall_us"), std::string::npos);
  stats_client.shutdown();

  const ViaPolicy::Stats s = policy.stats();
  EXPECT_EQ(s.calls, server.decisions_served());
  server.stop();
}

TEST(ConcurrentRpc, HandlerThreadsAreReaped) {
  RelayOptionTable options;
  (void)options.intern_bounce(0);
  ViaConfig config;
  config.serving_stripes = 4;
  ViaPolicy policy(
      options, [](RelayId, RelayId) { return PathPerformance{}; }, config);
  ControllerServer server(policy);
  server.start();

  // Sequential short-lived connections: each must come off the live
  // handler list once its client disconnects, not accumulate until stop().
  for (int i = 0; i < 12; ++i) {
    ControllerClient client(server.port());
    (void)client.get_stats(obs::StatsFormat::Json);
    client.shutdown();
  }
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (server.active_handlers() > 0 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(server.active_handlers(), 0u);
  server.stop();
}

}  // namespace
}  // namespace via
