// Chaos and degradation tests for the RPC layer (DESIGN.md §6f):
//   - client + server under deterministic frame drops/delays/truncations/
//     resets complete with zero lost observations (deadline + retry +
//     reconnect + server-side Report dedup),
//   - overload shedding: a saturated server answers Busy and clients
//     retry through it,
//   - fallback-to-direct when the controller is unreachable,
//   - malformed frames get a typed Error reply and a closed connection
//     instead of a wedged or crashed handler,
//   - Report/Refresh idempotency under client retries,
//   - graceful drain force-closes idle connections on stop().
// This file also runs under ASan+UBSan in CI (tools/ci.sh).
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "common/relay_option.h"
#include "flight_dump.h"
#include "rpc/client.h"
#include "rpc/errors.h"
#include "rpc/faulty_connection.h"
#include "rpc/framing.h"
#include "rpc/messages.h"
#include "rpc/server.h"
#include "rpc/soak_driver.h"
#include "rpc/socket.h"
#include "rpc/uring_reactor.h"

VIA_REGISTER_FLIGHT_DUMP("test_chaos");

namespace via {
namespace {

/// Counts interactions; optionally stalls in choose() to hold requests
/// inflight (overload and timeout tests).
class CountingPolicy final : public RoutingPolicy {
 public:
  explicit CountingPolicy(OptionId option = 1, int choose_delay_ms = 0)
      : option_(option), choose_delay_ms_(choose_delay_ms) {}
  [[nodiscard]] OptionId choose(const CallContext&) override {
    if (choose_delay_ms_ > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(choose_delay_ms_));
    }
    ++chosen;
    return option_;
  }
  void observe(const Observation&) override { ++observed; }
  void refresh(TimeSec now) override {
    ++refreshed;
    last_refresh = now;
  }
  [[nodiscard]] std::string_view name() const override { return "counting"; }

  std::atomic<int> chosen{0}, observed{0}, refreshed{0};
  std::atomic<TimeSec> last_refresh{0};

 private:
  OptionId option_;
  int choose_delay_ms_;
};

ClientConfig resilient_client() {
  ClientConfig c;
  c.request_timeout_ms = 250;
  c.max_retries = 30;
  c.backoff_base_ms = 1;
  c.backoff_max_ms = 8;
  return c;
}

// ------------------------------------------------------- chaos integration

/// The §6f acceptance scenario: several clients push decisions + reports
/// through transports that deterministically drop, delay, truncate, and
/// reset frames.  Every request must eventually succeed and every distinct
/// observation must reach the policy exactly once.
TEST(Chaos, FaultyTransportLosesNoObservations) {
  CountingPolicy policy(1);
  ControllerServer server(policy);
  server.start();

  constexpr int kClients = 4;
  constexpr int kCallsEach = 25;
  std::atomic<int> decisions_ok{0};
  std::atomic<std::int64_t> faults_total{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      FaultScheduleConfig chaos;
      chaos.seed = 0xC0FFEE + static_cast<std::uint64_t>(c);
      chaos.drop_prob = 0.12;
      chaos.delay_prob = 0.10;
      chaos.truncate_prob = 0.06;
      chaos.reset_prob = 0.06;
      chaos.delay_ms = 5;
      // Bounded chaos guarantees forward progress under any retry budget.
      chaos.max_faults = 12;
      FaultSchedule schedule(chaos);
      ControllerClient client(
          [&server, &schedule]() -> std::unique_ptr<TcpConnection> {
            return std::make_unique<FaultyConnection>(
                TcpConnection::connect_local(server.port()), &schedule);
          },
          resilient_client());
      for (int i = 0; i < kCallsEach; ++i) {
        DecisionRequest req;
        req.call_id = c * 1'000 + i;
        req.time = i;
        req.options = {0, 1};
        if (client.request_decision(req) == 1) ++decisions_ok;
        Observation obs;
        obs.id = req.call_id;
        obs.option = 1;
        obs.time = i;
        obs.perf = {100.0, 0.5, 2.0};
        client.report(obs);
      }
      client.shutdown();
      faults_total += schedule.faults_injected();
    });
  }
  for (auto& t : threads) t.join();
  server.stop();

  // Every decision answered, every distinct observation delivered exactly
  // once — retries may duplicate frames, the server's dedup eats them.
  EXPECT_EQ(decisions_ok.load(), kClients * kCallsEach);
  EXPECT_EQ(policy.observed.load(), kClients * kCallsEach);
  EXPECT_EQ(server.reports_received(), kClients * kCallsEach);
  // The run actually exercised the fault machinery.
  EXPECT_GT(faults_total.load(), 0);
}

// ---------------------------------------------------------------- overload

TEST(Chaos, OverloadedServerShedsWithBusyAndClientsRetryThrough) {
  CountingPolicy policy(1, /*choose_delay_ms=*/10);
  ControllerServer server(policy, 0, {.max_inflight = 1});
  server.start();

  constexpr int kClients = 4;
  constexpr int kCallsEach = 10;
  std::atomic<int> ok{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      ClientConfig config = resilient_client();
      config.max_retries = 200;  // Busy storms need patience, not deadlines
      config.jitter_seed = static_cast<std::uint64_t>(c);
      ControllerClient client(server.port(), config);
      for (int i = 0; i < kCallsEach; ++i) {
        DecisionRequest req;
        req.call_id = c * 100 + i;
        req.options = {0, 1};
        if (client.request_decision(req) == 1) ++ok;
      }
      client.shutdown();
    });
  }
  for (auto& t : threads) t.join();
  server.stop();

  EXPECT_EQ(ok.load(), kClients * kCallsEach);
  EXPECT_EQ(policy.chosen.load(), kClients * kCallsEach);
  // With 4 clients against a 1-deep server, shedding must have fired.
  EXPECT_GT(server.busy_rejections(), 0);
}

// -------------------------------------------------------- fallback-to-direct

TEST(Chaos, UnreachableControllerFallsBackToDirect) {
  // Grab a port that refuses connections (listener bound, then destroyed).
  std::uint16_t dead_port = 0;
  {
    TcpListener listener(0);
    dead_port = listener.port();
  }
  ClientConfig config;
  config.request_timeout_ms = 100;
  config.max_retries = 1;
  config.backoff_base_ms = 1;
  config.fallback_direct = true;
  ControllerClient client(dead_port, config);

  obs::MetricsRegistry registry;
  client.attach_metrics(&registry);

  DecisionRequest req;
  req.call_id = 7;
  req.options = {0, 1, 2};
  EXPECT_EQ(client.request_decision(req), RelayOptionTable::direct_id());
  EXPECT_EQ(client.fallback_decisions(), 1);
  EXPECT_EQ(registry.counter("rpc.client.fallback_direct").value(), 1);
  EXPECT_GT(registry.counter("rpc.client.errors.reset").value(), 0);

  // Reports have no safe local fallback — they surface the typed error.
  Observation obs;
  obs.id = 7;
  try {
    client.report(obs);
    FAIL() << "report() should have thrown";
  } catch (const RpcError& e) {
    EXPECT_TRUE(e.kind() == RpcErrorKind::Reset || e.kind() == RpcErrorKind::Timeout)
        << rpc_error_kind_name(e.kind());
  }
}

TEST(Chaos, RequestDeadlineSurfacesTypedTimeout) {
  CountingPolicy policy(1, /*choose_delay_ms=*/400);
  ControllerServer server(policy);
  server.start();

  ClientConfig config;
  config.request_timeout_ms = 50;  // far shorter than the 400ms stall
  ControllerClient client(server.port(), config);
  DecisionRequest req;
  req.call_id = 1;
  req.options = {0, 1};
  try {
    (void)client.request_decision(req);
    FAIL() << "request_decision() should have timed out";
  } catch (const RpcError& e) {
    EXPECT_EQ(e.kind(), RpcErrorKind::Timeout);
  }
  server.stop();
}

// --------------------------------------------------------- malformed frames

TEST(Chaos, TruncatedPayloadGetsErrorReplyThenClose) {
  CountingPolicy policy;
  ControllerServer server(policy);
  server.start();

  TcpConnection conn = TcpConnection::connect_local(server.port());
  // A Report frame whose payload is far too short to decode.
  const std::array<std::byte, 2> junk{std::byte{0x01}, std::byte{0x02}};
  send_frame(conn, static_cast<std::uint8_t>(MsgType::Report), junk);

  Frame frame;
  ASSERT_TRUE(recv_frame(conn, frame));
  EXPECT_EQ(frame.type, static_cast<std::uint8_t>(MsgType::Error));
  WireReader r(frame.payload);
  const ErrorMsg err = ErrorMsg::decode(r);
  EXPECT_EQ(err.request_type, static_cast<std::uint8_t>(MsgType::Report));
  EXPECT_FALSE(err.text.empty());
  // After the error reply the server closes the stream.
  EXPECT_FALSE(recv_frame(conn, frame));

  server.stop();
  EXPECT_EQ(server.protocol_errors(), 1);
  EXPECT_EQ(policy.observed.load(), 0);
}

TEST(Chaos, OversizedFrameHeaderIsRejectedNotAllocated) {
  CountingPolicy policy;
  ControllerServer server(policy);
  server.start();

  TcpConnection conn = TcpConnection::connect_local(server.port());
  // Hand-build a header claiming a payload far past kMaxPayload.
  const std::uint32_t huge = static_cast<std::uint32_t>(kMaxPayload) + 1;
  std::array<std::byte, 5> header{};
  std::memcpy(header.data(), &huge, sizeof(huge));
  header[4] = std::byte{static_cast<unsigned char>(MsgType::DecisionRequest)};
  conn.send_all(header);

  Frame frame;
  ASSERT_TRUE(recv_frame(conn, frame));
  EXPECT_EQ(frame.type, static_cast<std::uint8_t>(MsgType::Error));
  EXPECT_FALSE(recv_frame(conn, frame));
  server.stop();
  EXPECT_EQ(server.protocol_errors(), 1);
}

TEST(Chaos, UnknownMessageTypeGetsErrorReply) {
  CountingPolicy policy;
  ControllerServer server(policy);
  server.start();

  TcpConnection raw = TcpConnection::connect_local(server.port());
  WireWriter w;
  w.u64(123);
  send_frame(raw, 0xEE, w.bytes());
  Frame frame;
  ASSERT_TRUE(recv_frame(raw, frame));
  EXPECT_EQ(frame.type, static_cast<std::uint8_t>(MsgType::Error));
  EXPECT_FALSE(recv_frame(raw, frame));
  server.stop();
  EXPECT_EQ(server.protocol_errors(), 1);
}

TEST(Chaos, ClientMapsServerErrorFrameToProtocolError) {
  CountingPolicy policy;
  ControllerServer server(policy);
  server.start();

  // Protocol errors are bugs, not outages: never retried, never masked by
  // fallback-to-direct.
  ClientConfig config;
  config.max_retries = 5;
  config.fallback_direct = true;
  ControllerClient client(server.port(), config);
  obs::MetricsRegistry registry;
  client.attach_metrics(&registry);

  DecisionRequest req;
  req.call_id = 99;
  // Over the server's decode sanity cap, but under the frame size limit —
  // the request arrives intact and is rejected by the message validator.
  req.options.assign(100'001, OptionId{0});
  try {
    (void)client.request_decision(req);
    FAIL() << "protocol error should propagate";
  } catch (const RpcError& e) {
    EXPECT_EQ(e.kind(), RpcErrorKind::Protocol);
  }
  EXPECT_EQ(registry.counter("rpc.client.errors.protocol").value(), 1);
  EXPECT_EQ(registry.counter("rpc.client.retries").value(), 0);
  server.stop();
  EXPECT_EQ(server.protocol_errors(), 1);
}

// ------------------------------------------------------------- idempotency

TEST(Chaos, DuplicateReportsAreAckedButObservedOnce) {
  CountingPolicy policy;
  ControllerServer server(policy);
  server.start();

  ControllerClient client(server.port());
  Observation obs;
  obs.id = 42;
  obs.option = 3;
  obs.time = 1'000;
  obs.perf = {120.0, 1.0, 4.0};
  client.report(obs);
  client.report(obs);  // a retry resend in disguise
  client.report(obs);
  client.shutdown();
  server.stop();

  EXPECT_EQ(policy.observed.load(), 1);
  EXPECT_EQ(server.reports_received(), 1);
  EXPECT_EQ(server.duplicate_reports(), 2);
}

TEST(Chaos, StaleRefreshTimestampsAreAckedWithoutRebuilding) {
  CountingPolicy policy;
  ControllerServer server(policy);
  server.start();

  ControllerClient client(server.port());
  client.refresh(1'000);
  client.refresh(1'000);  // duplicate
  client.refresh(500);    // stale
  client.refresh(2'000);  // genuinely new
  client.shutdown();
  server.stop();

  EXPECT_EQ(policy.refreshed.load(), 2);
  EXPECT_EQ(policy.last_refresh.load(), 2'000);
  EXPECT_EQ(server.duplicate_refreshes(), 2);
}

// ----------------------------------------------------------- graceful drain

TEST(Chaos, StopForceClosesIdleConnectionsAfterDrainTimeout) {
  CountingPolicy policy;
  ControllerServer server(policy, 0, {.drain_timeout_ms = 50});
  server.start();

  // An idle client that never sends and never disconnects.
  TcpConnection idle = TcpConnection::connect_local(server.port());
  // Let the handler thread pick the connection up.
  for (int i = 0; i < 100 && server.active_handlers() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GT(server.active_handlers(), 0u);

  const auto t0 = std::chrono::steady_clock::now();
  server.stop();  // must not hang on the idle connection
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(elapsed, std::chrono::seconds(5));
  EXPECT_GE(
      server.telemetry().registry.counter("rpc.server.drain_forced_closes").value(), 1);
}

// ------------------------------------------------------- reactor mode (§6h)

ServerConfig reactor_chaos_config(int workers = 2) {
  ServerConfig config;
  config.reactor_threads = workers;
  return config;
}

/// The §6f acceptance scenario rerun against the epoll reactor: the
/// drop/delay/truncate/reset ladder now lands on non-blocking sockets with
/// partial reads and buffered writes, and must still lose nothing.
TEST(Chaos, ReactorFaultyTransportLosesNoObservations) {
  CountingPolicy policy(1);
  ControllerServer server(policy, 0, reactor_chaos_config());
  server.start();

  constexpr int kClients = 4;
  constexpr int kCallsEach = 25;
  std::atomic<int> decisions_ok{0};
  std::atomic<std::int64_t> faults_total{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      FaultScheduleConfig chaos;
      chaos.seed = 0xBAD5EED + static_cast<std::uint64_t>(c);
      chaos.drop_prob = 0.12;
      chaos.delay_prob = 0.10;
      chaos.truncate_prob = 0.06;
      chaos.reset_prob = 0.06;
      chaos.delay_ms = 5;
      chaos.max_faults = 12;
      FaultSchedule schedule(chaos);
      ControllerClient client(
          [&server, &schedule]() -> std::unique_ptr<TcpConnection> {
            return std::make_unique<FaultyConnection>(
                TcpConnection::connect_local(server.port()), &schedule);
          },
          resilient_client());
      for (int i = 0; i < kCallsEach; ++i) {
        DecisionRequest req;
        req.call_id = c * 1'000 + i;
        req.time = i;
        req.options = {0, 1};
        if (client.request_decision(req) == 1) ++decisions_ok;
        Observation obs;
        obs.id = req.call_id;
        obs.option = 1;
        obs.time = i;
        obs.perf = {100.0, 0.5, 2.0};
        client.report(obs);
      }
      client.shutdown();
      faults_total += schedule.faults_injected();
    });
  }
  for (auto& t : threads) t.join();
  server.stop();

  EXPECT_EQ(decisions_ok.load(), kClients * kCallsEach);
  EXPECT_EQ(policy.observed.load(), kClients * kCallsEach);
  EXPECT_EQ(server.reports_received(), kClients * kCallsEach);
  EXPECT_GT(faults_total.load(), 0);
}

/// Acceptance (§6h): a reactor-mode run with >= 1000 concurrent
/// connections, every one sending a decision + a distinct report, with
/// zero lost observations.  Thread-per-connection could never hold this
/// many clients with a bounded thread count; the reactor serves them from
/// its fixed worker pool.
TEST(Chaos, ReactorThousandConnectionSoakLosesNoObservations) {
  CountingPolicy policy(1);
  ControllerServer server(policy, 0, reactor_chaos_config());
  server.start();

  constexpr int kConns = 1000;
  std::vector<TcpConnection> conns;
  conns.reserve(kConns);
  for (int i = 0; i < kConns; ++i) {
    conns.push_back(TcpConnection::connect_local(server.port()));
  }
  // All of them registered and held open at once.
  for (int i = 0; i < 2'000 && server.active_handlers() < kConns; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(server.active_handlers(), static_cast<std::size_t>(kConns));

  // Pipeline one decision + one report per connection before reading any
  // reply: 2000 requests outstanding across 1000 live sockets.
  for (int i = 0; i < kConns; ++i) {
    std::vector<std::byte> burst;
    {
      DecisionRequest req;
      req.call_id = i;
      req.options = {0, 1};
      WireWriter w;
      req.encode(w);
      const auto payload = w.bytes();
      const auto len = static_cast<std::uint32_t>(payload.size());
      for (int b = 0; b < 4; ++b) {
        burst.push_back(static_cast<std::byte>((len >> (8 * b)) & 0xFF));
      }
      burst.push_back(static_cast<std::byte>(MsgType::DecisionRequest));
      burst.insert(burst.end(), payload.begin(), payload.end());
    }
    {
      ReportMsg msg;
      msg.obs.id = i;
      msg.obs.option = 1;
      msg.obs.time = i;
      msg.obs.perf = {100.0, 0.5, 2.0};
      WireWriter w;
      msg.encode(w);
      const auto payload = w.bytes();
      const auto len = static_cast<std::uint32_t>(payload.size());
      for (int b = 0; b < 4; ++b) {
        burst.push_back(static_cast<std::byte>((len >> (8 * b)) & 0xFF));
      }
      burst.push_back(static_cast<std::byte>(MsgType::Report));
      burst.insert(burst.end(), payload.begin(), payload.end());
    }
    conns[static_cast<std::size_t>(i)].send_all(burst);
  }
  int decisions_ok = 0;
  int acks = 0;
  for (int i = 0; i < kConns; ++i) {
    Frame reply;
    ASSERT_TRUE(recv_frame(conns[static_cast<std::size_t>(i)], reply));
    if (reply.type == static_cast<std::uint8_t>(MsgType::DecisionResponse)) ++decisions_ok;
    ASSERT_TRUE(recv_frame(conns[static_cast<std::size_t>(i)], reply));
    if (reply.type == static_cast<std::uint8_t>(MsgType::ReportAck)) ++acks;
  }
  for (auto& conn : conns) conn.close();
  server.stop();

  EXPECT_EQ(decisions_ok, kConns);
  EXPECT_EQ(acks, kConns);
  EXPECT_EQ(policy.observed.load(), kConns);   // zero lost observations
  EXPECT_EQ(server.reports_received(), kConns);
  EXPECT_EQ(server.decisions_served(), kConns);
  EXPECT_EQ(server.active_handlers(), 0u);
}

// ------------------------------------------------ 10k-connection soak (§6j)

class SoakBackend : public ::testing::TestWithParam<ServingBackend> {
 protected:
  void SetUp() override {
    if (GetParam() == ServingBackend::kUring && !UringReactor::supported()) {
      GTEST_SKIP() << "io_uring unsupported on this kernel; epoll variant covers the seam";
    }
    // The server side alone holds ~10k sockets; lift the soft fd limit to
    // the hard cap before accepting the storm.
    raise_fd_limit();
  }
};

/// Acceptance (§6j): a 10,000-connection pipelined soak against each
/// event-driven backend.  The client half runs in a child process (two
/// processes' worth of fd budget — neither side can hold all 20k sockets
/// alone), reports mode, every observation id distinct.  The server must
/// deliver every observation to the policy exactly once (zero lost),
/// keep every connection's write queue under the configured cap, and
/// drain cleanly at stop() — no forced closes.
TEST_P(SoakBackend, TenThousandConnectionSoakLosesNoObservations) {
  CountingPolicy policy(1);
  ServerConfig cfg;
  cfg.backend = GetParam();
  cfg.reactor_threads = 2;
  ControllerServer server(policy, 0, cfg);
  server.start();
  ASSERT_EQ(server.serving_backend(), GetParam());

  SoakConfig soak;
  soak.port = server.port();
  soak.connections = 10'000;
  soak.rounds = 2;
  soak.depth = 4;
  soak.threads = 8;
  soak.reports = true;
  std::string spawn_error;
  const auto result = spawn_soak(soak, &spawn_error);
  ASSERT_TRUE(result.has_value()) << spawn_error;
  EXPECT_TRUE(result->ok) << result->error;
  EXPECT_EQ(result->connected, soak.connections);
  const auto expected =
      static_cast<std::int64_t>(soak.connections) * soak.rounds * soak.depth;
  EXPECT_EQ(result->sent, expected);
  EXPECT_EQ(result->received, expected);
  EXPECT_EQ(result->mismatched, 0);

  // Zero lost observations: every distinct report reached the policy.
  EXPECT_EQ(policy.observed.load(), expected);
  EXPECT_EQ(server.reports_received(), static_cast<std::size_t>(expected));

  // Bounded write queues: no connection ever held more than the cap (plus
  // one decode batch of slack) in unsent replies.
  EXPECT_LE(server.peak_conn_queued_bytes(), cfg.write_buffer_cap + 4096);

  // Clean drain: the client closed every socket; once the reactor reaps
  // the FINs, stop() must not need to force anything.
  for (int i = 0; i < 10'000 && server.active_handlers() > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(server.active_handlers(), 0u);
  server.stop();
  EXPECT_EQ(
      server.telemetry().registry.counter("rpc.server.drain_forced_closes").value(), 0);
}

INSTANTIATE_TEST_SUITE_P(Backends, SoakBackend,
                         ::testing::Values(ServingBackend::kEpoll, ServingBackend::kUring),
                         [](const ::testing::TestParamInfo<ServingBackend>& info) {
                           return std::string(serving_backend_name(info.param));
                         });

// ------------------------------------- fault injection under partial writes

/// FaultyConnection must fault whole frames even when the sender hands
/// bytes over in arbitrary chunks (a non-blocking peer flushing a
/// WriteBuffer).  A drop-only schedule delivered in 3-byte chunks must
/// land exactly the frames a replica schedule says survive.
TEST(Chaos, FaultyConnectionFaultsPerFrameUnderChunkedSends) {
  TcpListener listener(0);
  FaultScheduleConfig chaos;
  chaos.seed = 0x5EED5;
  chaos.drop_prob = 0.4;
  FaultSchedule schedule(chaos);
  FaultSchedule replica(chaos);  // same seed => same per-frame actions

  constexpr int kFrames = 32;
  // Filled by the receiver thread; read only after join().
  std::vector<std::uint32_t> received;
  std::thread receiver([&] {
    TcpConnection conn = listener.accept();
    Frame frame;
    while (recv_frame(conn, frame)) {
      WireReader r(frame.payload);
      received.push_back(r.u32());
    }
  });

  FaultyConnection conn(TcpConnection::connect_local(listener.port()), &schedule);
  std::vector<std::uint32_t> expected;
  for (int i = 0; i < kFrames; ++i) {
    WireWriter w;
    w.u32(static_cast<std::uint32_t>(i));
    // Serialize the full frame, then dribble it out in 3-byte chunks: the
    // injector has to reassemble the header and hold one action per frame.
    std::vector<std::byte> wire;
    const auto payload = w.bytes();
    const auto len = static_cast<std::uint32_t>(payload.size());
    for (int b = 0; b < 4; ++b) {
      wire.push_back(static_cast<std::byte>((len >> (8 * b)) & 0xFF));
    }
    wire.push_back(std::byte{42});
    wire.insert(wire.end(), payload.begin(), payload.end());
    for (std::size_t off = 0; off < wire.size(); off += 3) {
      const std::size_t n = std::min<std::size_t>(3, wire.size() - off);
      conn.send_all(std::span<const std::byte>(wire).subspan(off, n));
    }
    if (replica.next_action() == FaultAction::Pass) {
      expected.push_back(static_cast<std::uint32_t>(i));
    }
  }
  conn.close();
  receiver.join();
  EXPECT_EQ(received, expected);
  EXPECT_GT(schedule.faults_injected(), 0);
}

TEST(Chaos, FaultyConnectionTruncatesChunkedFrameAtHalf) {
  TcpListener listener(0);
  FaultScheduleConfig chaos;
  chaos.truncate_prob = 1.0;
  FaultSchedule schedule(chaos);

  std::atomic<std::size_t> peer_bytes{0};
  std::thread receiver([&] {
    TcpConnection conn = listener.accept();
    std::array<std::byte, 256> buf{};
    Frame frame;
    // The receiver sees a mid-frame EOF (recv_frame throws), having read
    // only the truncated prefix.
    try {
      (void)recv_frame(conn, frame);
    } catch (const std::exception&) {
    }
    (void)buf;
  });

  FaultyConnection conn(TcpConnection::connect_local(listener.port()), &schedule);
  WireWriter w;
  w.u64(0xAABBCCDDEEFF0011ULL);
  std::vector<std::byte> wire;
  const auto payload = w.bytes();
  const auto len = static_cast<std::uint32_t>(payload.size());
  for (int b = 0; b < 4; ++b) {
    wire.push_back(static_cast<std::byte>((len >> (8 * b)) & 0xFF));
  }
  wire.push_back(std::byte{42});
  wire.insert(wire.end(), payload.begin(), payload.end());
  bool threw = false;
  try {
    // Byte-at-a-time: the cut must land at frame_size/2 regardless of
    // chunking, and surface as one injected-truncation reset.
    for (const std::byte b : wire) {
      conn.send_all(std::span<const std::byte>(&b, 1));
    }
  } catch (const RpcError& e) {
    threw = true;
    EXPECT_EQ(e.kind(), RpcErrorKind::Reset);
  }
  EXPECT_TRUE(threw);
  receiver.join();
  (void)peer_bytes;
}

TEST(Chaos, FaultyConnectionResetsChunkedFrameAtHeader) {
  TcpListener listener(0);
  FaultScheduleConfig chaos;
  chaos.reset_prob = 1.0;
  FaultSchedule schedule(chaos);

  std::thread receiver([&] {
    TcpConnection conn = listener.accept();
    Frame frame;
    try {
      (void)recv_frame(conn, frame);
    } catch (const std::exception&) {
    }
  });

  FaultyConnection conn(TcpConnection::connect_local(listener.port()), &schedule);
  const std::array<std::byte, 5> header{std::byte{4}, std::byte{0}, std::byte{0},
                                        std::byte{0}, std::byte{42}};
  bool threw = false;
  try {
    // The reset fires the moment the header completes — exactly where the
    // legacy whole-frame injector drew its action.
    conn.send_all(std::span<const std::byte>(header).first(2));
    conn.send_all(std::span<const std::byte>(header).subspan(2));
  } catch (const RpcError& e) {
    threw = true;
    EXPECT_EQ(e.kind(), RpcErrorKind::Reset);
  }
  EXPECT_TRUE(threw);
  EXPECT_EQ(schedule.faults_injected(), 1);
  receiver.join();
}

}  // namespace
}  // namespace via
