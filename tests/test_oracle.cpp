#include "sim/oracle.h"

#include <gtest/gtest.h>

#include <limits>

namespace via {
namespace {

class OracleTest : public ::testing::Test {
 protected:
  OracleTest() : world_({.num_ases = 30, .num_relays = 8, .seed = 41}), gt_(world_) {}

  CallContext ctx(AsId src, AsId dst, TimeSec t, CallId id = 1) {
    CallContext c;
    c.id = id;
    c.time = t;
    c.src_as = src;
    c.dst_as = dst;
    c.key_src = src;
    c.key_dst = dst;
    c.options = gt_.candidate_options(src, dst);
    return c;
  }

  World world_;
  GroundTruth gt_;
};

TEST_F(OracleTest, PicksGroundTruthBest) {
  OraclePolicy oracle(gt_, Metric::Rtt);
  for (AsId src = 0; src < 6; ++src) {
    const AsId dst = src + 6;
    const CallContext c = ctx(src, dst, 5 * kSecondsPerDay);
    const OptionId pick = oracle.choose(c);
    double best = std::numeric_limits<double>::infinity();
    for (const OptionId opt : c.options) {
      best = std::min(best, gt_.day_mean(src, dst, opt, 5).rtt_ms);
    }
    EXPECT_DOUBLE_EQ(gt_.day_mean(src, dst, pick, 5).rtt_ms, best);
  }
}

TEST_F(OracleTest, OptimizesConfiguredMetric) {
  OraclePolicy rtt_oracle(gt_, Metric::Rtt);
  OraclePolicy loss_oracle(gt_, Metric::Loss);
  int diff = 0;
  for (AsId src = 0; src < 10; ++src) {
    const AsId dst = src + 10;
    const CallContext c = ctx(src, dst, 0);
    if (rtt_oracle.choose(c) != loss_oracle.choose(c)) ++diff;
  }
  // Different metrics should disagree at least sometimes.
  EXPECT_GT(diff, 0);
}

TEST_F(OracleTest, TracksDayChanges) {
  OraclePolicy oracle(gt_, Metric::Rtt);
  int changes = 0;
  for (int day = 0; day < 25; ++day) {
    const OptionId pick = oracle.choose(ctx(1, 2, day * kSecondsPerDay));
    static OptionId prev = kInvalidOption;
    if (prev != kInvalidOption && pick != prev) ++changes;
    prev = pick;
  }
  // Temporal dynamics should flip the best option at least once.
  EXPECT_GT(changes, 0);
}

TEST_F(OracleTest, BudgetLimitsRelayedFraction) {
  OraclePolicy oracle(gt_, Metric::Rtt, {.fraction = 0.2, .aware = true});
  int relayed = 0;
  const int calls = 4000;
  for (int i = 0; i < calls; ++i) {
    const AsId src = static_cast<AsId>(i % 15);
    const AsId dst = static_cast<AsId>(15 + (i % 15));
    const OptionId pick =
        oracle.choose(ctx(src, dst, (i % 10) * kSecondsPerDay, static_cast<CallId>(i)));
    if (pick != RelayOptionTable::direct_id()) ++relayed;
  }
  EXPECT_LE(relayed / static_cast<double>(calls), 0.22);
}

TEST_F(OracleTest, UnlimitedBudgetRelaysMost) {
  OraclePolicy oracle(gt_, Metric::Rtt);
  int relayed = 0;
  const int calls = 500;
  for (int i = 0; i < calls; ++i) {
    const AsId src = static_cast<AsId>(i % 15);
    const AsId dst = static_cast<AsId>(15 + (i % 15));
    if (oracle.choose(ctx(src, dst, 0, static_cast<CallId>(i))) !=
        RelayOptionTable::direct_id()) {
      ++relayed;
    }
  }
  // Relay paths usually beat the public direct path in this world.
  EXPECT_GT(relayed, calls / 2);
}

TEST_F(OracleTest, Name) {
  OraclePolicy oracle(gt_, Metric::Rtt);
  EXPECT_EQ(oracle.name(), "oracle");
}

}  // namespace
}  // namespace via
