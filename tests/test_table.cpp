#include "util/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace via {
namespace {

TEST(FormatDouble, Precision) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(3.0, 0), "3");
  EXPECT_EQ(format_double(-1.5, 1), "-1.5");
}

TEST(TextTable, RendersHeaderAndRows) {
  TextTable t({"name", "value"});
  t.row().cell("alpha").cell(1.5, 1);
  t.row().cell("b").cell_int(42);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("1.5"), std::string::npos);
  EXPECT_NE(out.find("42"), std::string::npos);
  // Header underline present.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TextTable, ColumnsAligned) {
  TextTable t({"a", "b"});
  t.row().cell("longvalue").cell("x");
  t.row().cell("s").cell("y");
  std::ostringstream os;
  t.print(os);
  std::istringstream is(os.str());
  std::string header, underline, row1, row2;
  std::getline(is, header);
  std::getline(is, underline);
  std::getline(is, row1);
  std::getline(is, row2);
  // The second column starts at the same offset in both rows.
  EXPECT_EQ(row1.find('x'), row2.find('y'));
}

TEST(TextTable, PercentFormatting) {
  TextTable t({"p"});
  t.row().cell_pct(0.4567, 1);
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("45.7%"), std::string::npos);
}

TEST(TextTable, CsvOutput) {
  TextTable t({"a", "b"});
  t.row().cell("1").cell("2");
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(TextTable, RowCount) {
  TextTable t({"a"});
  EXPECT_EQ(t.row_count(), 0u);
  t.row().cell("x");
  EXPECT_EQ(t.row_count(), 1u);
}

TEST(Banner, ContainsTitle) {
  std::ostringstream os;
  print_banner(os, "Figure 1");
  EXPECT_NE(os.str().find("== Figure 1 =="), std::string::npos);
}

}  // namespace
}  // namespace via
