#include "util/percentile.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/rng.h"

namespace via {
namespace {

TEST(Percentile, EmptyReturnsZero) {
  EXPECT_EQ(percentile({}, 50.0), 0.0);
  EXPECT_EQ(percentile_sorted({}, 50.0), 0.0);
}

TEST(Percentile, SingleElement) {
  const std::vector<double> v{7.0};
  EXPECT_EQ(percentile(v, 0.0), 7.0);
  EXPECT_EQ(percentile(v, 50.0), 7.0);
  EXPECT_EQ(percentile(v, 100.0), 7.0);
}

TEST(Percentile, InterpolatesBetweenRanks) {
  const std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25.0), 2.5);
}

TEST(Percentile, UnsortedInputHandled) {
  const std::vector<double> v{9.0, 1.0, 5.0, 3.0, 7.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 9.0);
}

TEST(Percentile, ClampsOutOfRange) {
  const std::vector<double> v{1.0, 2.0, 3.0};
  EXPECT_EQ(percentile(v, -5.0), 1.0);
  EXPECT_EQ(percentile(v, 150.0), 3.0);
}

TEST(Cdf, BuildsMonotone) {
  Rng rng(3);
  std::vector<double> v;
  for (int i = 0; i < 5000; ++i) v.push_back(rng.gaussian(0, 1));
  const auto cdf = build_cdf(v, 50);
  ASSERT_EQ(cdf.size(), 50u);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_LE(cdf[i - 1].value, cdf[i].value);
    EXPECT_LT(cdf[i - 1].cum_fraction, cdf[i].cum_fraction);
  }
  EXPECT_DOUBLE_EQ(cdf.back().cum_fraction, 1.0);
}

TEST(Cdf, SmallInputKeepsAllPoints) {
  const auto cdf = build_cdf({3.0, 1.0, 2.0}, 100);
  ASSERT_EQ(cdf.size(), 3u);
  EXPECT_EQ(cdf[0].value, 1.0);
  EXPECT_EQ(cdf[2].value, 3.0);
}

TEST(Cdf, FractionAtQueries) {
  const auto cdf = build_cdf({1.0, 2.0, 3.0, 4.0}, 100);
  EXPECT_EQ(cdf_fraction_at(cdf, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf_fraction_at(cdf, 1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf_fraction_at(cdf, 2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf_fraction_at(cdf, 4.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf_fraction_at(cdf, 99.0), 1.0);
}

TEST(Cdf, EmptyIsZero) { EXPECT_EQ(cdf_fraction_at({}, 1.0), 0.0); }

TEST(P2, ExactWhileWarmingUp) {
  P2Quantile q(0.5);
  q.add(3.0);
  EXPECT_DOUBLE_EQ(q.value(), 3.0);
  q.add(1.0);
  q.add(5.0);
  EXPECT_DOUBLE_EQ(q.value(), 3.0);  // median of {1,3,5}
}

TEST(P2, ResetClears) {
  P2Quantile q(0.5);
  for (int i = 0; i < 100; ++i) q.add(i);
  q.reset();
  EXPECT_EQ(q.count(), 0u);
  EXPECT_EQ(q.value(), 0.0);
}

// Property sweep: P2 approximates the true quantile of several
// distributions within a few percent of the distribution's scale.
struct P2Case {
  double quantile;
  int distribution;  // 0 = uniform, 1 = gaussian, 2 = exponential
};

class P2Accuracy : public ::testing::TestWithParam<P2Case> {};

TEST_P(P2Accuracy, TracksTrueQuantile) {
  const auto [qv, dist] = GetParam();
  P2Quantile estimator(qv);
  Rng rng(hash_mix(static_cast<std::uint64_t>(qv * 1000), dist));
  std::vector<double> all;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) {
    double x = 0;
    switch (dist) {
      case 0:
        x = rng.uniform(0, 100);
        break;
      case 1:
        x = rng.gaussian(50, 10);
        break;
      default:
        x = rng.exponential(20);
        break;
    }
    estimator.add(x);
    all.push_back(x);
  }
  std::sort(all.begin(), all.end());
  const double truth = percentile_sorted(all, qv * 100.0);
  const double scale = all[static_cast<std::size_t>(0.99 * n)] - all[0];
  EXPECT_NEAR(estimator.value(), truth, 0.03 * scale)
      << "q=" << qv << " dist=" << dist;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, P2Accuracy,
    ::testing::Values(P2Case{0.1, 0}, P2Case{0.5, 0}, P2Case{0.9, 0}, P2Case{0.1, 1},
                      P2Case{0.5, 1}, P2Case{0.9, 1}, P2Case{0.5, 2}, P2Case{0.9, 2},
                      P2Case{0.7, 2}, P2Case{0.95, 1}));

}  // namespace
}  // namespace via
