#include "common/types.h"

#include <gtest/gtest.h>

#include "common/call.h"
#include "common/relay_option.h"

namespace via {
namespace {

TEST(Metric, NamesAndUnits) {
  EXPECT_EQ(metric_name(Metric::Rtt), "RTT");
  EXPECT_EQ(metric_name(Metric::Loss), "loss");
  EXPECT_EQ(metric_name(Metric::Jitter), "jitter");
  EXPECT_EQ(metric_unit(Metric::Rtt), "ms");
  EXPECT_EQ(metric_unit(Metric::Loss), "%");
}

TEST(PathPerformance, GetSetRoundTrip) {
  PathPerformance p;
  p.set(Metric::Rtt, 100.0);
  p.set(Metric::Loss, 1.5);
  p.set(Metric::Jitter, 9.0);
  EXPECT_DOUBLE_EQ(p.get(Metric::Rtt), 100.0);
  EXPECT_DOUBLE_EQ(p.rtt_ms, 100.0);
  EXPECT_DOUBLE_EQ(p.get(Metric::Loss), 1.5);
  EXPECT_DOUBLE_EQ(p.get(Metric::Jitter), 9.0);
}

TEST(PoorThresholds, PaperValues) {
  const PoorThresholds t;
  EXPECT_DOUBLE_EQ(t.rtt_ms, 320.0);
  EXPECT_DOUBLE_EQ(t.loss_pct, 1.2);
  EXPECT_DOUBLE_EQ(t.jitter_ms, 12.0);
}

TEST(PoorThresholds, PoorIsInclusiveAtThreshold) {
  const PoorThresholds t;
  PathPerformance p{320.0, 0.0, 0.0};
  EXPECT_TRUE(t.poor(Metric::Rtt, p));
  p.rtt_ms = 319.99;
  EXPECT_FALSE(t.poor(Metric::Rtt, p));
}

TEST(PoorThresholds, AnyPoorCombinations) {
  const PoorThresholds t;
  EXPECT_FALSE(t.any_poor({100.0, 0.5, 5.0}));
  EXPECT_TRUE(t.any_poor({400.0, 0.5, 5.0}));
  EXPECT_TRUE(t.any_poor({100.0, 2.0, 5.0}));
  EXPECT_TRUE(t.any_poor({100.0, 0.5, 20.0}));
  EXPECT_TRUE(t.any_poor({400.0, 2.0, 20.0}));
}

TEST(AsPairKey, OrderIndependent) {
  EXPECT_EQ(as_pair_key(3, 9), as_pair_key(9, 3));
  EXPECT_NE(as_pair_key(3, 9), as_pair_key(3, 10));
  EXPECT_EQ(as_pair_key(5, 5), as_pair_key(5, 5));
}

TEST(TimeHelpers, DayAndHour) {
  EXPECT_EQ(day_of(0), 0);
  EXPECT_EQ(day_of(kSecondsPerDay - 1), 0);
  EXPECT_EQ(day_of(kSecondsPerDay), 1);
  EXPECT_EQ(hour_of(0), 0);
  EXPECT_EQ(hour_of(3600 * 5 + 100), 5);
  EXPECT_EQ(hour_of(kSecondsPerDay + 3600 * 23), 23);
}

TEST(CallRecord, DerivedPredicates) {
  CallRecord r;
  r.src_as = 1;
  r.dst_as = 2;
  r.src_country = 10;
  r.dst_country = 10;
  EXPECT_TRUE(r.inter_as());
  EXPECT_FALSE(r.international());
  r.dst_country = 11;
  EXPECT_TRUE(r.international());
  r.dst_as = 1;
  EXPECT_FALSE(r.inter_as());
}

TEST(CallRecord, RatingPredicates) {
  CallRecord r;
  EXPECT_FALSE(r.rated());
  r.rating = 2;
  EXPECT_TRUE(r.rated());
  EXPECT_TRUE(r.rated_poor());
  r.rating = 3;
  EXPECT_FALSE(r.rated_poor());
  r.rating = 1;
  EXPECT_TRUE(r.rated_poor());
  r.rating = 5;
  EXPECT_FALSE(r.rated_poor());
}

TEST(RelayOptionTable, DirectAlwaysPresent) {
  const RelayOptionTable t;
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(RelayOptionTable::direct_id(), 0);
  EXPECT_EQ(t.get(0).kind, RelayKind::Direct);
  EXPECT_EQ(t.label(0), "direct");
}

TEST(RelayOptionTable, InterningDeduplicates) {
  RelayOptionTable t;
  const OptionId a = t.intern_bounce(3);
  const OptionId b = t.intern_bounce(3);
  EXPECT_EQ(a, b);
  EXPECT_EQ(t.size(), 2u);
  const OptionId c = t.intern_bounce(4);
  EXPECT_NE(a, c);
}

TEST(RelayOptionTable, TransitUnordered) {
  RelayOptionTable t;
  const OptionId a = t.intern_transit(5, 9);
  const OptionId b = t.intern_transit(9, 5);
  EXPECT_EQ(a, b);
  EXPECT_EQ(t.get(a).a, 5);
  EXPECT_EQ(t.get(a).b, 9);
}

TEST(RelayOptionTable, TransitRequiresDistinctRelays) {
  RelayOptionTable t;
  EXPECT_THROW((void)t.intern_transit(4, 4), std::invalid_argument);
}

TEST(RelayOptionTable, Labels) {
  RelayOptionTable t;
  const OptionId b = t.intern_bounce(7);
  const OptionId tr = t.intern_transit(3, 12);
  EXPECT_EQ(t.label(b), "bounce(7)");
  EXPECT_EQ(t.label(tr), "transit(3,12)");
}

TEST(RelayOptionTable, AllIdsEnumerates) {
  RelayOptionTable t;
  (void)t.intern_bounce(1);
  (void)t.intern_transit(1, 2);
  const auto ids = t.all_ids();
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_EQ(ids[0], 0);
  EXPECT_EQ(ids[2], 2);
}

TEST(RelayOptionTable, BounceAndTransitDistinctIds) {
  RelayOptionTable t;
  const OptionId b1 = t.intern_bounce(1);
  const OptionId t12 = t.intern_transit(1, 2);
  const OptionId b2 = t.intern_bounce(2);
  EXPECT_NE(b1, t12);
  EXPECT_NE(b2, t12);
  EXPECT_EQ(t.size(), 4u);
}

}  // namespace
}  // namespace via
