#include "core/history.h"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <unordered_set>
#include <vector>

#include "util/rng.h"

namespace via {
namespace {

Observation make_obs(AsId src, AsId dst, OptionId opt, double rtt, double loss = 0.5,
                     double jitter = 3.0, RelayId ingress = -1, TimeSec t = 0) {
  Observation o;
  o.id = 1;
  o.time = t;
  o.src_as = src;
  o.dst_as = dst;
  o.option = opt;
  o.ingress = ingress;
  o.perf = {rtt, loss, jitter};
  return o;
}

TEST(HistoryWindow, FindAfterAdd) {
  HistoryWindow w;
  w.add(make_obs(1, 2, 0, 100.0));
  const PathAggregate* agg = w.find(as_pair_key(1, 2), 0);
  ASSERT_NE(agg, nullptr);
  EXPECT_EQ(agg->count(), 1);
  EXPECT_DOUBLE_EQ(agg->raw_mean[metric_index(Metric::Rtt)], 100.0);
}

TEST(HistoryWindow, MissingPathIsNull) {
  HistoryWindow w;
  w.add(make_obs(1, 2, 0, 100.0));
  EXPECT_EQ(w.find(as_pair_key(1, 3), 0), nullptr);
  EXPECT_EQ(w.find(as_pair_key(1, 2), 5), nullptr);
}

TEST(HistoryWindow, UndirectedAggregation) {
  HistoryWindow w;
  w.add(make_obs(1, 2, 0, 100.0));
  w.add(make_obs(2, 1, 0, 200.0));
  const PathAggregate* agg = w.find(as_pair_key(1, 2), 0);
  ASSERT_NE(agg, nullptr);
  EXPECT_EQ(agg->count(), 2);
  EXPECT_DOUBLE_EQ(agg->raw_mean[0], 150.0);
}

TEST(HistoryWindow, SeparatesOptions) {
  HistoryWindow w;
  w.add(make_obs(1, 2, 0, 100.0));
  w.add(make_obs(1, 2, 3, 50.0));
  EXPECT_DOUBLE_EQ(w.find(as_pair_key(1, 2), 0)->raw_mean[0], 100.0);
  EXPECT_DOUBLE_EQ(w.find(as_pair_key(1, 2), 3)->raw_mean[0], 50.0);
  EXPECT_EQ(w.size(), 2u);
}

TEST(HistoryWindow, LinearizedStatsTracked) {
  HistoryWindow w;
  w.add(make_obs(1, 2, 0, 100.0, 10.0, 4.0));
  const PathAggregate* agg = w.find(as_pair_key(1, 2), 0);
  ASSERT_NE(agg, nullptr);
  EXPECT_NEAR(agg->lin_mean[metric_index(Metric::Loss)], linearize(Metric::Loss, 10.0),
              1e-12);
  EXPECT_NEAR(agg->lin_mean[metric_index(Metric::Jitter)], 16.0, 1e-12);
}

TEST(HistoryWindow, IngressNormalizedToLowerEndpoint) {
  RelayOptionTable options;
  const OptionId transit = options.intern_transit(4, 9);
  HistoryWindow w(&options);

  // Source is the lower endpoint: ingress stored as-is.
  w.add(make_obs(1, 2, transit, 100.0, 0.5, 3.0, /*ingress=*/4));
  EXPECT_EQ(w.find(as_pair_key(1, 2), transit)->ingress_lo, 4);

  // Source is the higher endpoint: the lo side talks to the *other* relay.
  HistoryWindow w2(&options);
  w2.add(make_obs(2, 1, transit, 100.0, 0.5, 3.0, /*ingress=*/4));
  EXPECT_EQ(w2.find(as_pair_key(1, 2), transit)->ingress_lo, 9);
}

TEST(HistoryWindow, ClearEmpties) {
  HistoryWindow w;
  w.add(make_obs(1, 2, 0, 100.0));
  w.clear();
  EXPECT_EQ(w.size(), 0u);
  EXPECT_EQ(w.observations(), 0);
  EXPECT_EQ(w.find(as_pair_key(1, 2), 0), nullptr);
}

TEST(HistoryWindow, ForEachVisitsAll) {
  HistoryWindow w;
  w.add(make_obs(1, 2, 0, 100.0));
  w.add(make_obs(1, 3, 1, 100.0));
  w.add(make_obs(4, 5, 2, 100.0));
  int visited = 0;
  w.for_each([&](std::uint64_t, OptionId, const PathAggregate&) { ++visited; });
  EXPECT_EQ(visited, 3);
}

TEST(HistoryWindow, PathKeyCollisionFree) {
  // Exhaustive-ish check over a realistic id range.
  std::unordered_set<std::uint64_t> keys;
  for (AsId a = 0; a < 40; ++a) {
    for (AsId b = a; b < 40; ++b) {
      for (OptionId o = 0; o < 30; ++o) {
        keys.insert(HistoryWindow::path_key(as_pair_key(a, b), o));
      }
    }
  }
  EXPECT_EQ(keys.size(), static_cast<std::size_t>(40 * 41 / 2 * 30));
}

TEST(HistoryWindow, ObservationCountAccumulates) {
  HistoryWindow w;
  for (int i = 0; i < 7; ++i) w.add(make_obs(1, 2, 0, 100.0));
  EXPECT_EQ(w.observations(), 7);
  EXPECT_EQ(w.size(), 1u);
}

TEST(PathAggregate, MatchesOnlineStatsBitForBit) {
  // The compact Welford recurrence must reproduce OnlineStats exactly:
  // golden choice-hash replays hang off this arithmetic.
  HistoryWindow w;
  std::array<OnlineStats, kNumMetrics> raw_ref;
  std::array<OnlineStats, kNumMetrics> lin_ref;
  const double rtts[] = {80.0, 310.5, 120.25, 99.75, 410.0, 55.5};
  const double losses[] = {0.1, 2.5, 0.0, 1.2, 7.75, 0.4};
  const double jitters[] = {1.5, 14.0, 3.25, 9.0, 30.5, 0.75};
  for (int i = 0; i < 6; ++i) {
    w.add(make_obs(1, 2, 0, rtts[i], losses[i], jitters[i]));
    const PathPerformance perf{rtts[i], losses[i], jitters[i]};
    for (const Metric m : kAllMetrics) {
      raw_ref[metric_index(m)].add(perf.get(m));
      lin_ref[metric_index(m)].add(linearize(m, perf.get(m)));
    }
  }
  const PathAggregate* agg = w.find(as_pair_key(1, 2), 0);
  ASSERT_NE(agg, nullptr);
  EXPECT_EQ(agg->count(), 6);
  for (std::size_t i = 0; i < kNumMetrics; ++i) {
    EXPECT_EQ(agg->raw_mean[i], raw_ref[i].mean()) << "metric " << i;
    EXPECT_EQ(agg->raw_sem(i), raw_ref[i].sem()) << "metric " << i;
    EXPECT_EQ(agg->lin_mean[i], lin_ref[i].mean()) << "metric " << i;
  }
}

TEST(PathAggregate, SemEdgeCases) {
  PathAggregate agg;
  EXPECT_TRUE(std::isinf(agg.raw_sem(0)));
  const std::array<double, kNumMetrics> x{-100.0, 0.0, 4.0};
  agg.accumulate(x, x);
  EXPECT_DOUBLE_EQ(agg.raw_sem(0), 100.0 * OnlineStats::kSingleSampleRelSem);
}

#ifdef NDEBUG
// In debug builds the same inputs trip an assert instead of the typed
// rejection, so the release-path test only runs with NDEBUG.
TEST(HistoryWindow, RejectsOutOfRangeKeys) {
  HistoryWindow w;
  EXPECT_EQ(w.add(make_obs(1, 1 << 24, 0, 100.0)), HistoryAddResult::kKeyOutOfRange);
  EXPECT_EQ(w.add(make_obs(1, 2, 1 << 14, 100.0)), HistoryAddResult::kKeyOutOfRange);
  EXPECT_EQ(w.add(make_obs(1, 2, -1, 100.0)), HistoryAddResult::kKeyOutOfRange);
  EXPECT_EQ(w.size(), 0u);
  EXPECT_EQ(w.observations(), 0);
  EXPECT_EQ(w.rejected(), 3);
  EXPECT_EQ(w.add(make_obs(1, (1 << 24) - 1, (1 << 14) - 1, 100.0)),
            HistoryAddResult::kAdded);
  EXPECT_EQ(w.size(), 1u);
}
#endif

TEST(HistoryWindow, PathKeyFits) {
  EXPECT_TRUE(HistoryWindow::path_key_fits(as_pair_key(0, (1 << 24) - 1), (1 << 14) - 1));
  EXPECT_FALSE(HistoryWindow::path_key_fits(as_pair_key(0, 1 << 24), 0));
  EXPECT_FALSE(HistoryWindow::path_key_fits(as_pair_key(1 << 24, 1 << 25), 0));
  EXPECT_FALSE(HistoryWindow::path_key_fits(as_pair_key(0, 1), 1 << 14));
  EXPECT_FALSE(HistoryWindow::path_key_fits(as_pair_key(0, 1), -1));
}

TEST(HistoryWindow, MaxPathsEvictsColdestFirst) {
  HistoryWindow w;
  w.set_max_paths(4);
  for (AsId d = 2; d <= 5; ++d) w.add(make_obs(1, d, 0, 100.0));
  EXPECT_EQ(w.size(), 4u);
  EXPECT_EQ(w.evictions(), 0);

  // Re-touch three of the four; the untouched one loses its second chance
  // first when a fifth path arrives.
  w.add(make_obs(1, 2, 0, 100.0));
  w.add(make_obs(1, 3, 0, 100.0));
  w.add(make_obs(1, 5, 0, 100.0));
  w.add(make_obs(1, 6, 0, 100.0));
  EXPECT_EQ(w.size(), 4u);
  EXPECT_EQ(w.evictions(), 1);
  EXPECT_EQ(w.find(as_pair_key(1, 4), 0), nullptr);
  EXPECT_NE(w.find(as_pair_key(1, 2), 0), nullptr);
  EXPECT_NE(w.find(as_pair_key(1, 6), 0), nullptr);
}

TEST(HistoryWindow, EvictionDeterministic) {
  // Same add() sequence => same survivor set, run to run.
  auto run = [] {
    HistoryWindow w;
    w.set_max_paths(16);
    Rng rng(123);
    for (int i = 0; i < 2000; ++i) {
      const auto d = static_cast<AsId>(2 + rng.uniform_index(64));
      const auto o = static_cast<OptionId>(rng.uniform_index(4));
      w.add(make_obs(1, d, o, 50.0 + static_cast<double>(i % 17)));
    }
    std::vector<std::uint64_t> keys;
    w.for_each([&](std::uint64_t pk, OptionId opt, const PathAggregate&) {
      keys.push_back(HistoryWindow::path_key(pk, opt));
    });
    return keys;
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 16u);
}

TEST(HistoryWindow, UnboundedByDefaultAndClearReleasesMemory) {
  HistoryWindow w;
  for (AsId d = 2; d < 2000; ++d) w.add(make_obs(1, d, 0, 100.0));
  EXPECT_EQ(w.size(), 1998u);
  EXPECT_EQ(w.evictions(), 0);
  const std::size_t peak = w.approx_bytes();
  EXPECT_GE(peak, 1998u * sizeof(PathAggregate));
  w.clear();
  EXPECT_LT(w.approx_bytes(), peak / 4);
  // The window stays usable after the shrink.
  w.add(make_obs(1, 2, 0, 100.0));
  EXPECT_EQ(w.size(), 1u);
}

}  // namespace
}  // namespace via
