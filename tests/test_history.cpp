#include "core/history.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace via {
namespace {

Observation make_obs(AsId src, AsId dst, OptionId opt, double rtt, double loss = 0.5,
                     double jitter = 3.0, RelayId ingress = -1, TimeSec t = 0) {
  Observation o;
  o.id = 1;
  o.time = t;
  o.src_as = src;
  o.dst_as = dst;
  o.option = opt;
  o.ingress = ingress;
  o.perf = {rtt, loss, jitter};
  return o;
}

TEST(HistoryWindow, FindAfterAdd) {
  HistoryWindow w;
  w.add(make_obs(1, 2, 0, 100.0));
  const PathAggregate* agg = w.find(as_pair_key(1, 2), 0);
  ASSERT_NE(agg, nullptr);
  EXPECT_EQ(agg->count(), 1);
  EXPECT_DOUBLE_EQ(agg->raw[metric_index(Metric::Rtt)].mean(), 100.0);
}

TEST(HistoryWindow, MissingPathIsNull) {
  HistoryWindow w;
  w.add(make_obs(1, 2, 0, 100.0));
  EXPECT_EQ(w.find(as_pair_key(1, 3), 0), nullptr);
  EXPECT_EQ(w.find(as_pair_key(1, 2), 5), nullptr);
}

TEST(HistoryWindow, UndirectedAggregation) {
  HistoryWindow w;
  w.add(make_obs(1, 2, 0, 100.0));
  w.add(make_obs(2, 1, 0, 200.0));
  const PathAggregate* agg = w.find(as_pair_key(1, 2), 0);
  ASSERT_NE(agg, nullptr);
  EXPECT_EQ(agg->count(), 2);
  EXPECT_DOUBLE_EQ(agg->raw[0].mean(), 150.0);
}

TEST(HistoryWindow, SeparatesOptions) {
  HistoryWindow w;
  w.add(make_obs(1, 2, 0, 100.0));
  w.add(make_obs(1, 2, 3, 50.0));
  EXPECT_DOUBLE_EQ(w.find(as_pair_key(1, 2), 0)->raw[0].mean(), 100.0);
  EXPECT_DOUBLE_EQ(w.find(as_pair_key(1, 2), 3)->raw[0].mean(), 50.0);
  EXPECT_EQ(w.size(), 2u);
}

TEST(HistoryWindow, LinearizedStatsTracked) {
  HistoryWindow w;
  w.add(make_obs(1, 2, 0, 100.0, 10.0, 4.0));
  const PathAggregate* agg = w.find(as_pair_key(1, 2), 0);
  ASSERT_NE(agg, nullptr);
  EXPECT_NEAR(agg->lin[metric_index(Metric::Loss)].mean(), linearize(Metric::Loss, 10.0),
              1e-12);
  EXPECT_NEAR(agg->lin[metric_index(Metric::Jitter)].mean(), 16.0, 1e-12);
}

TEST(HistoryWindow, IngressNormalizedToLowerEndpoint) {
  RelayOptionTable options;
  const OptionId transit = options.intern_transit(4, 9);
  HistoryWindow w(&options);

  // Source is the lower endpoint: ingress stored as-is.
  w.add(make_obs(1, 2, transit, 100.0, 0.5, 3.0, /*ingress=*/4));
  EXPECT_EQ(w.find(as_pair_key(1, 2), transit)->ingress_lo, 4);

  // Source is the higher endpoint: the lo side talks to the *other* relay.
  HistoryWindow w2(&options);
  w2.add(make_obs(2, 1, transit, 100.0, 0.5, 3.0, /*ingress=*/4));
  EXPECT_EQ(w2.find(as_pair_key(1, 2), transit)->ingress_lo, 9);
}

TEST(HistoryWindow, ClearEmpties) {
  HistoryWindow w;
  w.add(make_obs(1, 2, 0, 100.0));
  w.clear();
  EXPECT_EQ(w.size(), 0u);
  EXPECT_EQ(w.observations(), 0);
  EXPECT_EQ(w.find(as_pair_key(1, 2), 0), nullptr);
}

TEST(HistoryWindow, ForEachVisitsAll) {
  HistoryWindow w;
  w.add(make_obs(1, 2, 0, 100.0));
  w.add(make_obs(1, 3, 1, 100.0));
  w.add(make_obs(4, 5, 2, 100.0));
  int visited = 0;
  w.for_each([&](std::uint64_t, OptionId, const PathAggregate&) { ++visited; });
  EXPECT_EQ(visited, 3);
}

TEST(HistoryWindow, PathKeyCollisionFree) {
  // Exhaustive-ish check over a realistic id range.
  std::unordered_set<std::uint64_t> keys;
  for (AsId a = 0; a < 40; ++a) {
    for (AsId b = a; b < 40; ++b) {
      for (OptionId o = 0; o < 30; ++o) {
        keys.insert(HistoryWindow::path_key(as_pair_key(a, b), o));
      }
    }
  }
  EXPECT_EQ(keys.size(), static_cast<std::size_t>(40 * 41 / 2 * 30));
}

TEST(HistoryWindow, ObservationCountAccumulates) {
  HistoryWindow w;
  for (int i = 0; i < 7; ++i) w.add(make_obs(1, 2, 0, 100.0));
  EXPECT_EQ(w.observations(), 7);
  EXPECT_EQ(w.size(), 1u);
}

}  // namespace
}  // namespace via
