#include "rpc/testbed.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace via {
namespace {

TestbedConfig small_config() {
  TestbedConfig config;
  config.client_pairs = 6;
  config.measurement_rounds = 3;
  config.eval_calls_per_pair = 10;
  config.world.num_ases = 12;
  config.world.num_relays = 6;
  return config;
}

TEST(Testbed, RunsAndProducesResults) {
  const TestbedResult r = run_testbed(small_config());
  EXPECT_EQ(r.eval_calls, 60);
  EXPECT_GT(r.measurement_calls, 100);
  EXPECT_EQ(r.suboptimality.size(), 60u);
}

TEST(Testbed, SuboptimalityNonNegative) {
  const TestbedResult r = run_testbed(small_config());
  for (const double s : r.suboptimality) EXPECT_GE(s, 0.0);
}

TEST(Testbed, MostCallsNearOracle) {
  TestbedConfig config = small_config();
  config.client_pairs = 10;
  config.eval_calls_per_pair = 20;
  const TestbedResult r = run_testbed(config);
  // The paper reports ~70% of calls within 20%; be conservative here.
  EXPECT_GT(r.fraction_within(0.30), 0.5);
}

TEST(Testbed, FractionWithinMonotone) {
  const TestbedResult r = run_testbed(small_config());
  EXPECT_LE(r.fraction_within(0.1), r.fraction_within(0.2));
  EXPECT_LE(r.fraction_within(0.2), r.fraction_within(0.5));
  EXPECT_LE(r.fraction_within(0.5), 1.0);
}

TEST(Testbed, PicksBestSometimesButNotAlways) {
  TestbedConfig config = small_config();
  config.client_pairs = 10;
  config.eval_calls_per_pair = 20;
  const TestbedResult r = run_testbed(config);
  EXPECT_GT(r.fraction_best(), 0.05);
  EXPECT_LT(r.fraction_best(), 0.95);
}

TEST(Testbed, FractionBestZeroWhenEmpty) {
  TestbedResult r;
  EXPECT_EQ(r.fraction_best(), 0.0);
  EXPECT_EQ(r.fraction_within(0.5), 0.0);
}

}  // namespace
}  // namespace via
