#include "trace/generator.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "trace/dataset.h"

namespace via {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  TraceTest() : world_({.num_ases = 80, .num_relays = 10, .seed = 31}), gt_(world_) {}

  TraceConfig config(std::int64_t calls = 50'000) {
    TraceConfig c;
    c.days = 10;
    c.total_calls = calls;
    c.active_pairs = 300;
    c.seed = 7;
    return c;
  }

  World world_;
  GroundTruth gt_;
};

TEST_F(TraceTest, ArrivalCountAndSorted) {
  TraceGenerator gen(gt_, config());
  const auto arrivals = gen.generate_arrivals();
  EXPECT_EQ(arrivals.size(), 50'000u);
  EXPECT_TRUE(std::is_sorted(arrivals.begin(), arrivals.end(),
                             [](const CallArrival& a, const CallArrival& b) {
                               return a.time < b.time;
                             }));
}

TEST_F(TraceTest, CallIdsUnique) {
  TraceGenerator gen(gt_, config(10'000));
  const auto arrivals = gen.generate_arrivals();
  std::vector<CallId> ids;
  ids.reserve(arrivals.size());
  for (const auto& a : arrivals) ids.push_back(a.id);
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::adjacent_find(ids.begin(), ids.end()), ids.end());
}

TEST_F(TraceTest, TimesWithinHorizon) {
  TraceGenerator gen(gt_, config(20'000));
  for (const auto& a : gen.generate_arrivals()) {
    EXPECT_GE(a.time, 0);
    EXPECT_LT(a.day(), 10);
  }
}

TEST_F(TraceTest, InternationalFractionNearTarget) {
  TraceGenerator gen(gt_, config(100'000));
  const auto arrivals = gen.generate_arrivals();
  std::int64_t intl = 0;
  for (const auto& a : arrivals) intl += a.international() ? 1 : 0;
  // Pair-level draws add variance; allow a loose band around 46.6%.
  EXPECT_NEAR(intl / static_cast<double>(arrivals.size()), 0.466, 0.12);
}

TEST_F(TraceTest, IntraAsFractionNearTarget) {
  TraceGenerator gen(gt_, config(100'000));
  const auto arrivals = gen.generate_arrivals();
  std::int64_t intra = 0;
  for (const auto& a : arrivals) intra += a.inter_as() ? 0 : 1;
  EXPECT_NEAR(intra / static_cast<double>(arrivals.size()), 0.193, 0.12);
}

TEST_F(TraceTest, CountriesMatchWorld) {
  TraceGenerator gen(gt_, config(5'000));
  for (const auto& a : gen.generate_arrivals()) {
    EXPECT_EQ(a.src_country, world_.as_node(a.src_as).country);
    EXPECT_EQ(a.dst_country, world_.as_node(a.dst_as).country);
  }
}

TEST_F(TraceTest, DurationsPositiveWithHeavyTail) {
  TraceGenerator gen(gt_, config(50'000));
  const auto arrivals = gen.generate_arrivals();
  double sum = 0;
  int long_calls = 0;
  for (const auto& a : arrivals) {
    EXPECT_GT(a.duration_min, 0.0F);
    sum += a.duration_min;
    if (a.duration_min > 15.0F) ++long_calls;
  }
  EXPECT_NEAR(sum / static_cast<double>(arrivals.size()), 4.5, 0.5);
  EXPECT_GT(long_calls, 100);
}

TEST_F(TraceTest, VolumeSkewedAcrossPairs) {
  TraceGenerator gen(gt_, config(100'000));
  const auto arrivals = gen.generate_arrivals();
  std::unordered_map<std::uint64_t, int> per_pair;
  for (const auto& a : arrivals) ++per_pair[a.pair_key()];
  int max = 0;
  for (const auto& [k, n] : per_pair) max = std::max(max, n);
  // The busiest pair should far exceed the mean (Zipf skew).
  const double mean = 100'000.0 / static_cast<double>(per_pair.size());
  EXPECT_GT(max, 5.0 * mean);
}

TEST_F(TraceTest, DeterministicBySeed) {
  TraceGenerator g1(gt_, config(5'000));
  TraceGenerator g2(gt_, config(5'000));
  const auto a = g1.generate_arrivals();
  const auto b = g2.generate_arrivals();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); i += 100) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].src_as, b[i].src_as);
    EXPECT_EQ(a[i].time, b[i].time);
  }
}

TEST_F(TraceTest, RealizeAttachesPerformanceAndRating) {
  TraceGenerator gen(gt_, config(2'000));
  const auto arrivals = gen.generate_arrivals();
  int rated = 0;
  for (const auto& a : arrivals) {
    const CallRecord r = gen.realize(a, RelayOptionTable::direct_id());
    EXPECT_EQ(r.id, a.id);
    EXPECT_EQ(r.option, RelayOptionTable::direct_id());
    EXPECT_GT(r.perf.rtt_ms, 0.0);
    if (r.rated()) ++rated;
  }
  // Default rating sample fraction is 5%.
  EXPECT_NEAR(rated / 2000.0, 0.05, 0.02);
}

TEST_F(TraceTest, DefaultRoutedTraceMatchesArrivals) {
  TraceGenerator gen(gt_, config(3'000));
  const auto records = gen.generate_default_routed();
  EXPECT_EQ(records.size(), 3'000u);
  for (const auto& r : records) EXPECT_EQ(r.option, RelayOptionTable::direct_id());
}

TEST_F(TraceTest, SummaryStatsSane) {
  TraceGenerator gen(gt_, config(50'000));
  const auto arrivals = gen.generate_arrivals();
  const TraceStats stats = summarize_arrivals(arrivals, gt_);
  EXPECT_EQ(stats.calls, 50'000);
  EXPECT_GT(stats.users, 1000);
  EXPECT_LE(stats.ases, 80);
  EXPECT_GT(stats.ases, 20);
  EXPECT_GT(stats.countries, 5);
  EXPECT_EQ(stats.days, 10);
  EXPECT_NEAR(stats.wireless_fraction, 0.83, 0.01);
}

TEST_F(TraceTest, RecordSummaryIncludesRatedFraction) {
  TraceGenerator gen(gt_, config(20'000));
  const auto records = gen.generate_default_routed();
  const TraceStats stats = summarize_records(records, gt_);
  EXPECT_EQ(stats.calls, 20'000);
  EXPECT_NEAR(stats.rated_fraction, 0.05, 0.01);
}

TEST_F(TraceTest, TrafficMatrixWeightsPositive) {
  TraceGenerator gen(gt_, config(1'000));
  const auto& matrix = gen.traffic_matrix();
  EXPECT_GT(matrix.pairs.size(), 100u);
  for (const auto& p : matrix.pairs) {
    EXPECT_GE(p.src, 0);
    EXPECT_GE(p.dst, 0);
    EXPECT_GT(p.weight, 0.0);
  }
}

}  // namespace
}  // namespace via
