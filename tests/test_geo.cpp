#include "util/geo.h"

#include <gtest/gtest.h>

namespace via {
namespace {

TEST(Haversine, ZeroForSamePoint) {
  const GeoPoint p{51.5, -0.1};
  EXPECT_DOUBLE_EQ(haversine_km(p, p), 0.0);
}

TEST(Haversine, Symmetric) {
  const GeoPoint a{51.5, -0.1};
  const GeoPoint b{40.7, -74.0};
  EXPECT_DOUBLE_EQ(haversine_km(a, b), haversine_km(b, a));
}

TEST(Haversine, LondonToNewYork) {
  // Great-circle distance is ~5570 km.
  const GeoPoint london{51.5074, -0.1278};
  const GeoPoint nyc{40.7128, -74.0060};
  EXPECT_NEAR(haversine_km(london, nyc), 5570.0, 60.0);
}

TEST(Haversine, SingaporeToSydney) {
  const GeoPoint sin{1.3521, 103.8198};
  const GeoPoint syd{-33.8688, 151.2093};
  EXPECT_NEAR(haversine_km(sin, syd), 6300.0, 100.0);
}

TEST(Haversine, Antipodal) {
  const GeoPoint a{0.0, 0.0};
  const GeoPoint b{0.0, 180.0};
  // Half the Earth's circumference, ~20015 km.
  EXPECT_NEAR(haversine_km(a, b), 20015.0, 30.0);
}

TEST(Haversine, DatelineCrossing) {
  const GeoPoint a{0.0, 179.5};
  const GeoPoint b{0.0, -179.5};
  EXPECT_NEAR(haversine_km(a, b), 111.0, 2.0);  // one degree at the equator
}

TEST(FiberDelay, TwoHundredKmPerMs) {
  EXPECT_DOUBLE_EQ(fiber_delay_ms(200.0), 1.0);
  EXPECT_DOUBLE_EQ(fiber_delay_ms(0.0), 0.0);
  // Transatlantic one-way: ~5570 km -> ~28 ms.
  EXPECT_NEAR(fiber_delay_ms(5570.0), 27.85, 0.1);
}

TEST(OffsetPoint, BasicShift) {
  const GeoPoint p{10.0, 20.0};
  const GeoPoint q = offset_point(p, 1.0, -2.0);
  EXPECT_DOUBLE_EQ(q.lat_deg, 11.0);
  EXPECT_DOUBLE_EQ(q.lon_deg, 18.0);
}

TEST(OffsetPoint, ClampsLatitude) {
  const GeoPoint q = offset_point({84.0, 0.0}, 5.0, 0.0);
  EXPECT_DOUBLE_EQ(q.lat_deg, 85.0);
  const GeoPoint r = offset_point({-84.0, 0.0}, -5.0, 0.0);
  EXPECT_DOUBLE_EQ(r.lat_deg, -85.0);
}

TEST(OffsetPoint, WrapsLongitude) {
  EXPECT_DOUBLE_EQ(offset_point({0.0, 179.0}, 0.0, 2.0).lon_deg, -179.0);
  EXPECT_DOUBLE_EQ(offset_point({0.0, -179.0}, 0.0, -2.0).lon_deg, 179.0);
}

}  // namespace
}  // namespace via
