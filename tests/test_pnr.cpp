#include "quality/pnr.h"

#include <gtest/gtest.h>

#include <cmath>

namespace via {
namespace {

TEST(PnrAccumulator, EmptyIsZero) {
  PnrAccumulator acc;
  EXPECT_EQ(acc.total(), 0);
  EXPECT_EQ(acc.pnr(Metric::Rtt), 0.0);
  EXPECT_EQ(acc.pnr_any(), 0.0);
}

TEST(PnrAccumulator, CountsPerMetric) {
  PnrAccumulator acc;
  acc.add({400.0, 0.5, 5.0});   // poor RTT only
  acc.add({100.0, 2.0, 5.0});   // poor loss only
  acc.add({100.0, 0.5, 5.0});   // clean
  acc.add({100.0, 0.5, 20.0});  // poor jitter only
  EXPECT_EQ(acc.total(), 4);
  EXPECT_DOUBLE_EQ(acc.pnr(Metric::Rtt), 0.25);
  EXPECT_DOUBLE_EQ(acc.pnr(Metric::Loss), 0.25);
  EXPECT_DOUBLE_EQ(acc.pnr(Metric::Jitter), 0.25);
  EXPECT_DOUBLE_EQ(acc.pnr_any(), 0.75);
}

TEST(PnrAccumulator, AnyIsNotSumOfIndividuals) {
  PnrAccumulator acc;
  acc.add({400.0, 2.0, 20.0});  // poor on all three at once
  acc.add({100.0, 0.5, 5.0});
  EXPECT_DOUBLE_EQ(acc.pnr(Metric::Rtt), 0.5);
  EXPECT_DOUBLE_EQ(acc.pnr_any(), 0.5);  // one bad call, not three
}

TEST(PnrAccumulator, Merge) {
  PnrAccumulator a, b;
  a.add({400.0, 0.5, 5.0});
  b.add({100.0, 0.5, 5.0});
  b.add({100.0, 0.5, 5.0});
  a.merge(b);
  EXPECT_EQ(a.total(), 3);
  EXPECT_NEAR(a.pnr(Metric::Rtt), 1.0 / 3.0, 1e-12);
}

TEST(PnrAccumulator, CustomThresholds) {
  PoorThresholds strict{100.0, 0.5, 5.0};
  PnrAccumulator acc(strict);
  acc.add({150.0, 0.1, 1.0});
  EXPECT_DOUBLE_EQ(acc.pnr(Metric::Rtt), 1.0);
  EXPECT_DOUBLE_EQ(acc.pnr(Metric::Loss), 0.0);
}

TEST(PnrAccumulator, SemMatchesBinomial) {
  PnrAccumulator acc;
  for (int i = 0; i < 100; ++i) acc.add({i < 20 ? 400.0 : 100.0, 0.0, 0.0});
  EXPECT_NEAR(acc.pnr_sem(Metric::Rtt), std::sqrt(0.2 * 0.8 / 100.0), 1e-12);
  EXPECT_GT(acc.pnr_any_sem(), 0.0);
}

}  // namespace
}  // namespace via
