#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.h"

namespace via {
namespace {

TEST(OnlineStats, EmptyDefaults) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_TRUE(std::isinf(s.sem()));
}

TEST(OnlineStats, SingleSample) {
  OnlineStats s;
  s.add(4.0);
  EXPECT_EQ(s.count(), 1);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_EQ(s.variance(), 0.0);
  // Single-sample SEM is a wide relative guess, not zero.
  EXPECT_DOUBLE_EQ(s.sem(), 4.0 * OnlineStats::kSingleSampleRelSem);
}

TEST(OnlineStats, MatchesReferenceFormulas) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  OnlineStats s;
  for (const double x : xs) s.add(x);
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 denominator: sum sq dev = 32 -> 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.sem(), std::sqrt(32.0 / 7.0 / 8.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(OnlineStats, MergeEqualsCombinedStream) {
  Rng rng(5);
  OnlineStats a, b, all;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.gaussian(3.0, 2.0);
    (i % 2 == 0 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a, b;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  b.merge(a);
  EXPECT_DOUBLE_EQ(b.mean(), mean);
}

TEST(OnlineStats, ResetClears) {
  OnlineStats s;
  s.add(5.0);
  s.reset();
  EXPECT_EQ(s.count(), 0);
}

TEST(OnlineStats, SemShrinksWithSamples) {
  OnlineStats s;
  Rng rng(9);
  std::vector<double> sems;
  for (int i = 0; i < 1000; ++i) {
    s.add(rng.gaussian(10.0, 1.0));
    if (i == 9 || i == 99 || i == 999) sems.push_back(s.sem());
  }
  EXPECT_GT(sems[0], sems[1]);
  EXPECT_GT(sems[1], sems[2]);
}

TEST(RateCounter, Basics) {
  RateCounter r;
  EXPECT_EQ(r.rate(), 0.0);
  r.add(true);
  r.add(false);
  r.add(false);
  r.add(true);
  EXPECT_EQ(r.total(), 4);
  EXPECT_EQ(r.hits(), 2);
  EXPECT_DOUBLE_EQ(r.rate(), 0.5);
}

TEST(RateCounter, Merge) {
  RateCounter a, b;
  a.add(true);
  b.add(false);
  b.add(false);
  a.merge(b);
  EXPECT_EQ(a.total(), 3);
  EXPECT_NEAR(a.rate(), 1.0 / 3.0, 1e-12);
}

TEST(RateCounter, BinomialSem) {
  RateCounter r;
  for (int i = 0; i < 100; ++i) r.add(i < 30);
  EXPECT_NEAR(r.sem(), std::sqrt(0.3 * 0.7 / 100.0), 1e-12);
}

TEST(RelativeImprovement, Definition) {
  EXPECT_DOUBLE_EQ(relative_improvement_pct(10.0, 5.0), 50.0);
  EXPECT_DOUBLE_EQ(relative_improvement_pct(10.0, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(relative_improvement_pct(0.0, 5.0), 0.0);  // guarded
  EXPECT_DOUBLE_EQ(relative_improvement_pct(10.0, 12.0), -20.0);
}

TEST(Correlation, PerfectPositive) {
  Correlation c;
  for (int i = 0; i < 100; ++i) c.add(i, 2.0 * i + 1.0);
  EXPECT_NEAR(c.coefficient(), 1.0, 1e-12);
}

TEST(Correlation, PerfectNegative) {
  Correlation c;
  for (int i = 0; i < 100; ++i) c.add(i, -0.5 * i);
  EXPECT_NEAR(c.coefficient(), -1.0, 1e-12);
}

TEST(Correlation, IndependentNearZero) {
  Correlation c;
  Rng rng(77);
  for (int i = 0; i < 100'000; ++i) c.add(rng.uniform(), rng.uniform());
  EXPECT_NEAR(c.coefficient(), 0.0, 0.02);
}

TEST(Correlation, DegenerateInputs) {
  Correlation c;
  EXPECT_EQ(c.coefficient(), 0.0);
  c.add(1.0, 1.0);
  EXPECT_EQ(c.coefficient(), 0.0);  // fewer than 2 points
  c.add(1.0, 2.0);                  // zero x-variance
  EXPECT_EQ(c.coefficient(), 0.0);
}

// Property: correlation of noisy linear data rises with signal-to-noise.
class CorrelationNoise : public ::testing::TestWithParam<double> {};

TEST_P(CorrelationNoise, MonotoneInNoise) {
  const double noise = GetParam();
  Correlation c;
  Rng rng(101);
  for (int i = 0; i < 20'000; ++i) {
    const double x = rng.uniform(0, 10);
    c.add(x, x + rng.gaussian(0.0, noise));
  }
  const double expected = 1.0 / std::sqrt(1.0 + noise * noise / (100.0 / 12.0));
  EXPECT_NEAR(c.coefficient(), expected, 0.03);
}

INSTANTIATE_TEST_SUITE_P(NoiseLevels, CorrelationNoise,
                         ::testing::Values(0.1, 0.5, 1.0, 2.0, 5.0));

}  // namespace
}  // namespace via
