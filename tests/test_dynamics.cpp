#include "netsim/dynamics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.h"
#include "util/stats.h"

namespace via {
namespace {

TEST(Dynamics, CongestionNonNegative) {
  const Dynamics dyn(1);
  for (std::uint64_t link = 0; link < 50; ++link) {
    for (int day = 0; day < 30; ++day) {
      EXPECT_GE(dyn.congestion(hash_mix(link, 0xAB), day), 0.0);
    }
  }
}

TEST(Dynamics, DeterministicAndMemoConsistent) {
  const Dynamics dyn(2);
  const std::uint64_t link = hash_mix(7, 0xAB);
  // Query out of order; memoization must not change values.
  const double d20 = dyn.congestion(link, 20);
  const double d5 = dyn.congestion(link, 5);
  EXPECT_DOUBLE_EQ(dyn.congestion(link, 20), d20);
  EXPECT_DOUBLE_EQ(dyn.congestion(link, 5), d5);

  const Dynamics dyn2(2);
  EXPECT_DOUBLE_EQ(dyn2.congestion(link, 5), d5);  // fresh instance agrees
  EXPECT_DOUBLE_EQ(dyn2.congestion(link, 20), d20);
}

TEST(Dynamics, SeedsProduceDifferentSeries) {
  const Dynamics a(1), b(2);
  const std::uint64_t link = 12345;
  int diff = 0;
  for (int day = 0; day < 20; ++day) {
    if (a.congestion(link, day) != b.congestion(link, day)) ++diff;
  }
  EXPECT_GT(diff, 10);
}

TEST(Dynamics, NegativeDayIsCalm) {
  const Dynamics dyn(3);
  EXPECT_GE(dyn.congestion(99, -1), 0.0);
}

TEST(Dynamics, DiurnalMeanNearOneAndPeaksInEvening) {
  const Dynamics dyn(4);
  const std::uint64_t link = 42;
  double sum = 0.0;
  double peak_val = 0.0;
  int peak_hour = -1;
  for (int h = 0; h < 24; ++h) {
    const double f = dyn.diurnal_factor(link, h * 3600);
    sum += f;
    if (f > peak_val) {
      peak_val = f;
      peak_hour = h;
    }
  }
  EXPECT_NEAR(sum / 24.0, 1.0, 0.02);
  EXPECT_EQ(peak_hour, dyn.params().peak_hour);
}

TEST(Dynamics, EventsCreateMultiDayEpisodes) {
  const Dynamics dyn(5);
  // Find a link with at least one event and verify the episode is contiguous.
  int episodes_with_length_over_1 = 0;
  for (std::uint64_t link = 0; link < 400 && episodes_with_length_over_1 == 0; ++link) {
    int run = 0;
    for (int day = 0; day < 60; ++day) {
      if (dyn.in_event(hash_mix(link, 0xCD), day)) {
        ++run;
        if (run >= 2) ++episodes_with_length_over_1;
      } else {
        run = 0;
      }
    }
  }
  EXPECT_GT(episodes_with_length_over_1, 0) << "no multi-day events in 400 links";
}

TEST(Dynamics, PronenessIsSkewedAcrossLinks) {
  const Dynamics dyn(6);
  // Measure per-link event prevalence over a long horizon; the distribution
  // should be strongly skewed (paper Figure 6): most links are rarely in an
  // event, a few are chronically bad.
  std::vector<double> prevalence;
  const int days = 200;
  for (std::uint64_t link = 0; link < 300; ++link) {
    int bad = 0;
    for (int day = 0; day < days; ++day) {
      if (dyn.in_event(hash_mix(link, 0xEF), day)) ++bad;
    }
    prevalence.push_back(static_cast<double>(bad) / days);
  }
  int calm = 0, chronic = 0;
  for (const double p : prevalence) {
    if (p < 0.15) ++calm;
    if (p > 0.4) ++chronic;
  }
  EXPECT_GT(calm, 200);   // most links are calm
  EXPECT_GE(chronic, 3);  // a few are chronically bad
  EXPECT_LT(chronic, 60);
}

TEST(Dynamics, Ar1SeriesIsAutocorrelated) {
  const Dynamics dyn(7);
  // Aggregate lag-1 autocorrelation of congestion across links: ordinary
  // variation should carry over between adjacent days.
  Correlation corr;
  for (std::uint64_t link = 0; link < 100; ++link) {
    const std::uint64_t k = hash_mix(link, 0x11);
    for (int day = 1; day < 40; ++day) {
      corr.add(dyn.congestion(k, day - 1), dyn.congestion(k, day));
    }
  }
  EXPECT_GT(corr.coefficient(), 0.2);
}

TEST(Dynamics, CongestionLevelsAreBounded) {
  const Dynamics dyn(8);
  for (std::uint64_t link = 0; link < 200; ++link) {
    for (int day = 0; day < 50; ++day) {
      EXPECT_LT(dyn.congestion(hash_mix(link, 0x22), day), 20.0);
    }
  }
}

}  // namespace
}  // namespace via
