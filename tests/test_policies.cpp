#include "core/policies.h"

#include <gtest/gtest.h>

#include <set>

namespace via {
namespace {

CallContext make_ctx(std::span<const OptionId> options, AsId src = 1, AsId dst = 2,
                     TimeSec t = 0) {
  CallContext c;
  c.id = 1;
  c.time = t;
  c.src_as = src;
  c.dst_as = dst;
  c.key_src = src;
  c.key_dst = dst;
  c.options = options;
  return c;
}

Observation make_obs(AsId src, AsId dst, OptionId opt, double rtt) {
  Observation o;
  o.src_as = src;
  o.dst_as = dst;
  o.option = opt;
  o.perf = {rtt, 0.5, 3.0};
  return o;
}

TEST(DefaultPolicy, AlwaysDirect) {
  DefaultPolicy p;
  RelayOptionTable options;
  const OptionId bounce = options.intern_bounce(0);
  const std::vector<OptionId> candidates{RelayOptionTable::direct_id(), bounce};
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(p.choose(make_ctx(candidates)), RelayOptionTable::direct_id());
  }
  EXPECT_EQ(p.name(), "default");
}

class PredictionOnlyTest : public ::testing::Test {
 protected:
  PredictionOnlyTest()
      : bounce0_(options_.intern_bounce(0)),
        bounce1_(options_.intern_bounce(1)),
        policy_(options_, [](RelayId, RelayId) { return PathPerformance{}; }, Metric::Rtt) {
    candidates_ = {RelayOptionTable::direct_id(), bounce0_, bounce1_};
  }

  RelayOptionTable options_;
  OptionId bounce0_, bounce1_;
  PredictionOnlyPolicy policy_;
  std::vector<OptionId> candidates_;
};

TEST_F(PredictionOnlyTest, FallsBackToDirectWithoutHistory) {
  EXPECT_EQ(policy_.choose(make_ctx(candidates_)), RelayOptionTable::direct_id());
}

TEST_F(PredictionOnlyTest, PicksBestPredictedMean) {
  for (int i = 0; i < 5; ++i) {
    policy_.observe(make_obs(1, 2, RelayOptionTable::direct_id(), 300.0));
    policy_.observe(make_obs(1, 2, bounce0_, 100.0));
    policy_.observe(make_obs(1, 2, bounce1_, 200.0));
  }
  policy_.refresh(kSecondsPerDay);
  EXPECT_EQ(policy_.choose(make_ctx(candidates_)), bounce0_);
}

TEST_F(PredictionOnlyTest, TrainingLagsOneWindow) {
  for (int i = 0; i < 5; ++i) policy_.observe(make_obs(1, 2, bounce0_, 100.0));
  // Without a refresh, the new observations are not yet in the predictor.
  EXPECT_EQ(policy_.choose(make_ctx(candidates_)), RelayOptionTable::direct_id());
  policy_.refresh(kSecondsPerDay);
  EXPECT_EQ(policy_.choose(make_ctx(candidates_)), bounce0_);
  // A second refresh replaces the trained window with the (empty) current
  // one: predictions disappear again.
  policy_.refresh(2 * kSecondsPerDay);
  EXPECT_EQ(policy_.choose(make_ctx(candidates_)), RelayOptionTable::direct_id());
}

TEST(ExplorationOnlyPolicy, MeasurementCallsWalkAllOptions) {
  // With explore_fraction = 1, every call is a measurement call and the
  // round-robin covers the full option space.
  ExplorationOnlyPolicy policy(Metric::Rtt, /*explore_fraction=*/1.0);
  RelayOptionTable options;
  const std::vector<OptionId> candidates{RelayOptionTable::direct_id(),
                                         options.intern_bounce(0), options.intern_bounce(1)};
  std::set<OptionId> seen;
  for (int i = 0; i < 3; ++i) {
    const OptionId pick = policy.choose(make_ctx(candidates));
    seen.insert(pick);
    policy.observe(make_obs(1, 2, pick, 100.0));
  }
  EXPECT_EQ(seen.size(), 3u);
}

TEST(ExplorationOnlyPolicy, ExploitsObservedBest) {
  ExplorationOnlyPolicy policy(Metric::Rtt, /*explore_fraction=*/0.0);
  RelayOptionTable options;
  const OptionId good = options.intern_bounce(0);
  const OptionId bad = options.intern_bounce(1);
  const std::vector<OptionId> candidates{RelayOptionTable::direct_id(), good, bad};
  policy.observe(make_obs(1, 2, good, 80.0));
  policy.observe(make_obs(1, 2, bad, 200.0));
  policy.observe(make_obs(1, 2, RelayOptionTable::direct_id(), 150.0));
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(policy.choose(make_ctx(candidates)), good);
  }
}

TEST(ExplorationOnlyPolicy, ConvergesToObservedBest) {
  ExplorationOnlyPolicy policy(Metric::Rtt, 0.2);
  RelayOptionTable options;
  const OptionId good = options.intern_bounce(0);
  const OptionId bad = options.intern_bounce(1);
  const std::vector<OptionId> candidates{RelayOptionTable::direct_id(), good, bad};
  int good_picks = 0;
  for (int i = 0; i < 400; ++i) {
    const OptionId pick = policy.choose(make_ctx(candidates));
    if (pick == good) ++good_picks;
    const double cost = pick == good ? 80.0 : (pick == bad ? 200.0 : 150.0);
    policy.observe(make_obs(1, 2, pick, cost));
  }
  EXPECT_GT(good_picks, 250);
}

TEST(ExplorationOnlyPolicy, WindowResetDiscardsKnowledge) {
  ExplorationOnlyPolicy policy(Metric::Rtt, /*explore_fraction=*/0.0);
  RelayOptionTable options;
  const OptionId bounce = options.intern_bounce(0);
  const std::vector<OptionId> candidates{RelayOptionTable::direct_id(), bounce};
  policy.observe(make_obs(1, 2, bounce, 50.0));
  EXPECT_EQ(policy.choose(make_ctx(candidates)), bounce);
  policy.refresh(kSecondsPerDay);
  // Knowledge gone: with no data and no measurement call, falls to direct.
  EXPECT_EQ(policy.choose(make_ctx(candidates)), RelayOptionTable::direct_id());
}

TEST(ExplorationOnlyPolicy, IndependentStatePerPair) {
  ExplorationOnlyPolicy policy(Metric::Rtt, /*explore_fraction=*/0.0);
  RelayOptionTable options;
  const OptionId bounce = options.intern_bounce(0);
  const std::vector<OptionId> candidates{RelayOptionTable::direct_id(), bounce};
  policy.observe(make_obs(1, 2, bounce, 50.0));
  EXPECT_EQ(policy.choose(make_ctx(candidates, 1, 2)), bounce);
  // A fresh pair has no data: exploit falls back to direct.
  EXPECT_EQ(policy.choose(make_ctx(candidates, 5, 6)), RelayOptionTable::direct_id());
}

}  // namespace
}  // namespace via
