#include "analysis/section2.h"

#include <gtest/gtest.h>

#include "netsim/groundtruth.h"
#include "trace/generator.h"

namespace via {
namespace {

CallRecord make_record(CallId id, double rtt, double loss, double jitter, int rating = -1,
                       AsId src = 1, AsId dst = 2, CountryId src_c = 0, CountryId dst_c = 1,
                       TimeSec t = 0) {
  CallRecord r;
  r.id = id;
  r.start = t;
  r.src_as = src;
  r.dst_as = dst;
  r.src_country = src_c;
  r.dst_country = dst_c;
  r.perf = {rtt, loss, jitter};
  r.rating = static_cast<std::int8_t>(rating);
  return r;
}

TEST(BinnedPcr, ComputesPerBinRates) {
  std::vector<CallRecord> records;
  // Bin [0,100): 4 rated calls, 1 poor.  Bin [100,200): 4 rated, 3 poor.
  for (int i = 0; i < 4; ++i) records.push_back(make_record(i, 50, 0, 0, i == 0 ? 1 : 4));
  for (int i = 0; i < 4; ++i) records.push_back(make_record(10 + i, 150, 0, 0, i < 3 ? 2 : 5));
  records.push_back(make_record(99, 50, 0, 0, -1));  // unrated: ignored

  const auto curve = binned_pcr(records, Metric::Rtt, 0, 200, 2, 1);
  ASSERT_EQ(curve.bins.size(), 2u);
  EXPECT_EQ(curve.bins[0].calls, 4);
  EXPECT_DOUBLE_EQ(curve.bins[0].pcr, 0.25);
  EXPECT_DOUBLE_EQ(curve.bins[1].pcr, 0.75);
  EXPECT_DOUBLE_EQ(curve.bins[1].normalized_pcr, 1.0);
  EXPECT_DOUBLE_EQ(curve.bins[0].normalized_pcr, 1.0 / 3.0);
}

TEST(BinnedPcr, MinSamplesFiltersBins) {
  std::vector<CallRecord> records;
  for (int i = 0; i < 10; ++i) records.push_back(make_record(i, 50, 0, 0, 3));
  records.push_back(make_record(50, 150, 0, 0, 1));
  const auto curve = binned_pcr(records, Metric::Rtt, 0, 200, 2, 5);
  ASSERT_EQ(curve.bins.size(), 1u);
  EXPECT_DOUBLE_EQ(curve.bins[0].metric_lo, 0.0);
}

TEST(BinnedPcr, CorrelationPositiveForMonotoneData) {
  std::vector<CallRecord> records;
  CallId id = 0;
  for (int bin = 0; bin < 10; ++bin) {
    for (int i = 0; i < 100; ++i) {
      // PCR rises with the bin index.
      const int rating = (i < bin * 10) ? 1 : 5;
      records.push_back(make_record(id++, bin * 10.0 + 5.0, 0, 0, rating));
    }
  }
  const auto curve = binned_pcr(records, Metric::Rtt, 0, 100, 10, 50);
  EXPECT_GT(curve.correlation, 0.98);
}

TEST(MetricCdfs, MonotoneAndComplete) {
  std::vector<CallRecord> records;
  for (int i = 0; i < 1000; ++i) {
    records.push_back(make_record(i, 100.0 + i, 0.001 * i, 0.01 * i));
  }
  const auto cdfs = metric_cdfs(records, 50);
  for (const Metric m : kAllMetrics) {
    const auto& cdf = cdfs[metric_index(m)];
    ASSERT_FALSE(cdf.empty());
    EXPECT_DOUBLE_EQ(cdf.back().cum_fraction, 1.0);
    for (std::size_t i = 1; i < cdf.size(); ++i) {
      EXPECT_LE(cdf[i - 1].value, cdf[i].value);
    }
  }
}

TEST(ConditionalPercentiles, RecoversLinearRelation) {
  std::vector<CallRecord> records;
  CallId id = 0;
  for (int x = 0; x < 100; ++x) {
    for (int rep = 0; rep < 20; ++rep) {
      // Jitter exactly 0.1 * RTT.
      records.push_back(make_record(id++, x, 0, 0.1 * x));
    }
  }
  const auto rows =
      conditional_percentiles(records, Metric::Rtt, Metric::Jitter, 0, 100, 10, 10);
  ASSERT_EQ(rows.size(), 10u);
  for (const auto& row : rows) {
    EXPECT_NEAR(row.p50, 0.1 * row.x_center, 0.06);
    EXPECT_LE(row.p10, row.p50);
    EXPECT_LE(row.p50, row.p90);
  }
}

TEST(PnrBreakdownTest, SplitsByClass) {
  std::vector<CallRecord> records;
  // International poor call, domestic clean call.
  records.push_back(make_record(1, 400, 0, 0, -1, 1, 2, 0, 1));
  records.push_back(make_record(2, 50, 0, 0, -1, 3, 4, 2, 2));
  // Intra-AS call.
  records.push_back(make_record(3, 50, 0, 0, -1, 5, 5, 3, 3));
  const auto b = pnr_breakdown(records);
  EXPECT_EQ(b.all.total(), 3);
  EXPECT_EQ(b.international.total(), 1);
  EXPECT_EQ(b.domestic.total(), 2);
  EXPECT_EQ(b.intra_as.total(), 1);
  EXPECT_EQ(b.inter_as.total(), 2);
  EXPECT_DOUBLE_EQ(b.international.pnr(Metric::Rtt), 1.0);
  EXPECT_DOUBLE_EQ(b.domestic.pnr(Metric::Rtt), 0.0);
}

TEST(PnrByCountry, AttributesBothSidesAndSorts) {
  std::vector<CallRecord> records;
  // Country 0 <-> 1: always poor.  Country 2 <-> 3: never poor.
  for (int i = 0; i < 20; ++i) records.push_back(make_record(i, 500, 0, 0, -1, 1, 2, 0, 1));
  for (int i = 0; i < 20; ++i)
    records.push_back(make_record(100 + i, 50, 0, 0, -1, 3, 4, 2, 3));
  const auto by_country = pnr_by_country(records, /*international_only=*/true, 10);
  ASSERT_EQ(by_country.size(), 4u);
  // Worst first.
  EXPECT_TRUE(by_country[0].country == 0 || by_country[0].country == 1);
  EXPECT_DOUBLE_EQ(by_country[0].acc.pnr_any(), 1.0);
  EXPECT_DOUBLE_EQ(by_country[3].acc.pnr_any(), 0.0);
}

TEST(PnrByCountry, MinCallsFilter) {
  std::vector<CallRecord> records;
  for (int i = 0; i < 5; ++i) records.push_back(make_record(i, 500, 0, 0, -1, 1, 2, 0, 1));
  EXPECT_TRUE(pnr_by_country(records, true, 10).empty());
  EXPECT_EQ(pnr_by_country(records, true, 5).size(), 2u);
}

TEST(AsPairContribution, SinglePairDominates) {
  std::vector<CallRecord> records;
  for (int i = 0; i < 50; ++i) records.push_back(make_record(i, 500, 0, 0, -1, 1, 2));
  for (int i = 0; i < 5; ++i) records.push_back(make_record(100 + i, 500, 0, 0, -1, 3, 4));
  records.push_back(make_record(999, 50, 0, 0, -1, 5, 6));  // clean pair, no contribution
  const auto curve = aspair_contribution(records);
  EXPECT_EQ(curve.total_poor_calls, 55);
  ASSERT_EQ(curve.total_pairs, 2);
  EXPECT_NEAR(curve.cumulative_share[0], 50.0 / 55.0, 1e-9);
  EXPECT_DOUBLE_EQ(curve.cumulative_share[1], 1.0);
}

TEST(AsPairContribution, EmptyWhenNoPoorCalls) {
  std::vector<CallRecord> records{make_record(1, 50, 0, 0)};
  const auto curve = aspair_contribution(records);
  EXPECT_EQ(curve.total_poor_calls, 0);
  EXPECT_TRUE(curve.cumulative_share.empty());
}

TEST(PersistencePrevalence, ChronicPairDetected) {
  std::vector<CallRecord> records;
  CallId id = 0;
  // Pair (1,2): poor every day for 10 days.  Pair (3,4): never poor.
  // 30 calls per pair per day for data density.
  for (int day = 0; day < 10; ++day) {
    for (int i = 0; i < 30; ++i) {
      records.push_back(
          make_record(id++, 500, 0, 0, -1, 1, 2, 0, 1, day * kSecondsPerDay + i));
      records.push_back(
          make_record(id++, 50, 0, 0, -1, 3, 4, 2, 3, day * kSecondsPerDay + i));
    }
  }
  const auto pp = persistence_prevalence(records, Metric::Rtt, 1.5, 20, 5);
  // Only the chronic pair qualifies (the clean pair never goes high).
  ASSERT_EQ(pp.persistence_days.size(), 1u);
  EXPECT_DOUBLE_EQ(pp.prevalence[0], 1.0);
  EXPECT_DOUBLE_EQ(pp.persistence_days[0], 10.0);
}

TEST(PersistencePrevalence, IntermittentPairHasShortRuns) {
  std::vector<CallRecord> records;
  CallId id = 0;
  for (int day = 0; day < 12; ++day) {
    const bool bad_day = (day % 3 == 0);  // high every third day
    for (int i = 0; i < 30; ++i) {
      records.push_back(make_record(id++, bad_day ? 500 : 50, 0, 0, -1, 1, 2, 0, 1,
                                    day * kSecondsPerDay + i));
      // Reference traffic keeping the daily overall PNR moderate.
      records.push_back(
          make_record(id++, 50, 0, 0, -1, 3, 4, 2, 3, day * kSecondsPerDay + i));
      records.push_back(
          make_record(id++, 500, 0, 0, -1, 5, 6, 4, 5, day * kSecondsPerDay + i));
    }
  }
  const auto pp = persistence_prevalence(records, Metric::Rtt, 1.5, 20, 5);
  bool found_intermittent = false;
  for (std::size_t i = 0; i < pp.persistence_days.size(); ++i) {
    if (pp.prevalence[i] < 0.5) {
      EXPECT_LE(pp.persistence_days[i], 2.0);
      found_intermittent = true;
    }
  }
  EXPECT_TRUE(found_intermittent);
}

// Integration: the synthetic trace reproduces the paper's Section 2 shapes.
class Section2Integration : public ::testing::Test {
 protected:
  Section2Integration() : world_({.num_ases = 100, .num_relays = 12, .seed = 77}), gt_(world_) {
    TraceConfig config;
    config.days = 20;
    config.total_calls = 120'000;
    config.active_pairs = 500;
    TraceGenerator gen(gt_, config);
    records_ = gen.generate_default_routed();
  }
  World world_;
  GroundTruth gt_;
  std::vector<CallRecord> records_;
};

TEST_F(Section2Integration, PerMetricPnrNearFifteenPercent) {
  const auto b = pnr_breakdown(records_);
  for (const Metric m : kAllMetrics) {
    EXPECT_GT(b.all.pnr(m), 0.07) << metric_name(m);
    EXPECT_LT(b.all.pnr(m), 0.30) << metric_name(m);
  }
}

TEST_F(Section2Integration, InternationalWorseThanDomestic) {
  const auto b = pnr_breakdown(records_);
  EXPECT_GT(b.international.pnr_any(), 1.5 * b.domestic.pnr_any());
  EXPECT_GT(b.inter_as.pnr_any(), b.intra_as.pnr_any());
}

TEST_F(Section2Integration, PcrRisesWithEveryMetric) {
  const auto rtt = binned_pcr(records_, Metric::Rtt, 0, 800, 16, 100);
  const auto loss = binned_pcr(records_, Metric::Loss, 0, 6, 12, 100);
  const auto jitter = binned_pcr(records_, Metric::Jitter, 0, 40, 10, 100);
  EXPECT_GT(rtt.correlation, 0.7);
  EXPECT_GT(loss.correlation, 0.7);
  EXPECT_GT(jitter.correlation, 0.7);
}

TEST_F(Section2Integration, NoSmallSetOfPairsDominates) {
  const auto curve = aspair_contribution(records_);
  ASSERT_GT(curve.total_pairs, 50);
  // The worst 5% of pairs must not account for most poor calls.
  const auto idx = static_cast<std::size_t>(curve.total_pairs / 20);
  EXPECT_LT(curve.cumulative_share[idx], 0.7);
}

}  // namespace
}  // namespace via
