#include <iostream>
#include "rpc/testbed.h"
using namespace via;
int main() {
  TestbedConfig cfg;
  TestbedResult r = run_testbed(cfg);
  std::cout << "measurement calls: " << r.measurement_calls
            << " eval calls: " << r.eval_calls << "\n";
  std::cout << "picked best: " << r.fraction_best()*100 << "%\n";
  std::cout << "within 10%: " << r.fraction_within(0.10)*100 << "%\n";
  std::cout << "within 20%: " << r.fraction_within(0.20)*100 << "%  (paper: ~70%)\n";
  std::cout << "within 50%: " << r.fraction_within(0.50)*100 << "%\n";
  return 0;
}
