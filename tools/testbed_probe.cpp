// testbed_probe — end-to-end controller/client testbed smoke run.
//
//   testbed_probe [--fault-plan SPEC]
//
// --fault-plan SPEC: inject deterministic ground-truth faults, e.g.
//   "outage:relay=2,start=0,end=86400;degrade:relay=0,start=0,end=43200,rtt=3"
// (see FaultPlan::parse for the full grammar).  The run completes either
// way; with a plan active the impaired-sample count is printed.
#include <iostream>
#include <string>

#include "rpc/testbed.h"
#include "sim/faults.h"

using namespace via;

int main(int argc, char** argv) {
  TestbedConfig cfg;
  FaultPlan plan;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) throw std::runtime_error("missing value for " + arg);
      return argv[++i];
    };
    try {
      if (arg == "--fault-plan") {
        plan = FaultPlan::parse(next());
        cfg.faults = &plan;
      } else if (arg == "--help" || arg == "-h") {
        std::cout << "usage: testbed_probe [--fault-plan SPEC]\n";
        return 0;
      } else {
        std::cerr << "unknown argument: " << arg << "\n";
        return 2;
      }
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 2;
    }
  }

  TestbedResult r = run_testbed(cfg);
  std::cout << "measurement calls: " << r.measurement_calls
            << " eval calls: " << r.eval_calls << "\n";
  std::cout << "picked best: " << r.fraction_best()*100 << "%\n";
  std::cout << "within 10%: " << r.fraction_within(0.10)*100 << "%\n";
  std::cout << "within 20%: " << r.fraction_within(0.20)*100 << "%  (paper: ~70%)\n";
  std::cout << "within 50%: " << r.fraction_within(0.50)*100 << "%\n";
  if (cfg.faults != nullptr) {
    std::cout << "fault-impaired samples: " << r.fault_impaired_samples << "\n";
  }
  return 0;
}
