#include <algorithm>
#include <iostream>
#include "sim/experiment.h"
#include "util/percentile.h"
using namespace via;
int main() {
  auto setup = Experiment::default_setup(Experiment::Scale::Medium);
  setup.trace.total_calls = 200'000;
  Experiment exp(setup);
  auto d = exp.make_default();
  RunResult r = exp.run(*d);
  for (Metric m : kAllMetrics) {
    auto v = r.values[metric_index(m)];
    std::sort(v.begin(), v.end());
    std::cout << metric_name(m) << ": p10=" << percentile_sorted(v,10)
      << " p50=" << percentile_sorted(v,50) << " p85=" << percentile_sorted(v,85)
      << " p90=" << percentile_sorted(v,90) << " p99=" << percentile_sorted(v,99)
      << "  PNR=" << r.pnr.pnr(m)*100 << "%\n";
  }
  std::cout << "any-bad PNR=" << r.pnr.pnr_any()*100 << "%\n";
  std::cout << "intl PNR(any)=" << r.pnr_international.pnr_any()*100
            << "% dom=" << r.pnr_domestic.pnr_any()*100 << "%\n";
  for (Metric m : kAllMetrics)
    std::cout << "intl PNR(" << metric_name(m) << ")=" << r.pnr_international.pnr(m)*100
              << "% dom=" << r.pnr_domestic.pnr(m)*100 << "%\n";
  return 0;
}
