#include <algorithm>
#include <chrono>
#include <iostream>
#include "sim/experiment.h"
#include "trace/stream.h"
#include "util/percentile.h"
using namespace via;

// Generator throughput (arrivals/sec): one timed pass over a stream.
static double arrivals_per_sec(ArrivalStream& stream) {
  stream.reset();
  const auto start = std::chrono::steady_clock::now();
  CallArrival a;
  std::int64_t n = 0;
  while (stream.next(a)) ++n;
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return secs > 0 ? static_cast<double>(n) / secs : 0.0;
}

int main() {
  auto setup = Experiment::default_setup(Experiment::Scale::Medium);
  setup.trace.total_calls = 200'000;
  Experiment exp(setup);

  {
    StreamTraceConfig stream_config;
    stream_config.total_calls = setup.trace.total_calls;
    stream_config.days = setup.trace.days;
    stream_config.active_pairs = setup.trace.active_pairs;
    stream_config.seed = setup.trace.seed;
    SyntheticArrivalStream synthetic(stream_config);
    std::cout << "generator throughput: synthetic stream "
              << arrivals_per_sec(synthetic) / 1e6 << "M arrivals/s, ";
    // The legacy materializing generator: time generation + the pass, since
    // stream() pays the full materialization up front.
    World world(setup.world);
    GroundTruth gt(world);
    TraceGenerator gen(gt, setup.trace);
    const auto start = std::chrono::steady_clock::now();
    auto legacy = gen.stream();
    CallArrival a;
    std::int64_t n = 0;
    while (legacy->next(a)) ++n;
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    std::cout << "legacy generator " << (secs > 0 ? static_cast<double>(n) / secs : 0.0) / 1e6
              << "M arrivals/s\n";
  }
  auto d = exp.make_default();
  RunResult r = exp.run(*d);
  for (Metric m : kAllMetrics) {
    auto v = r.values[metric_index(m)];
    std::sort(v.begin(), v.end());
    std::cout << metric_name(m) << ": p10=" << percentile_sorted(v,10)
      << " p50=" << percentile_sorted(v,50) << " p85=" << percentile_sorted(v,85)
      << " p90=" << percentile_sorted(v,90) << " p99=" << percentile_sorted(v,99)
      << "  PNR=" << r.pnr.pnr(m)*100 << "%\n";
  }
  std::cout << "any-bad PNR=" << r.pnr.pnr_any()*100 << "%\n";
  std::cout << "intl PNR(any)=" << r.pnr_international.pnr_any()*100
            << "% dom=" << r.pnr_domestic.pnr_any()*100 << "%\n";
  for (Metric m : kAllMetrics)
    std::cout << "intl PNR(" << metric_name(m) << ")=" << r.pnr_international.pnr(m)*100
              << "% dom=" << r.pnr_domestic.pnr(m)*100 << "%\n";
  return 0;
}
