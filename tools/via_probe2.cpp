#include <iostream>
#include "sim/experiment.h"
using namespace via;
int main() {
  auto setup = Experiment::default_setup(Experiment::Scale::Small);
  setup.trace.total_calls = 60'000; setup.trace.days = 14;
  Experiment exp(setup);
  auto run_via = [&](double eps, double coef, bool seed, double carry, const char* label) {
    ViaConfig c; c.epsilon = eps; c.bandit.exploration_coefficient = coef;
    c.bandit.seed_with_prediction = seed; c.bandit.carry_over = carry;
    auto p = exp.make_via(Metric::Rtt, c);
    RunResult r = exp.run(*p);
    std::cout << label << " PNR=" << r.pnr.pnr(Metric::Rtt) << " relayed=" << r.relayed_fraction() << "\n";
  };
  auto s1 = exp.make_prediction_only(Metric::Rtt);
  RunResult rp = exp.run(*s1);
  std::cout << "strawman1 PNR=" << rp.pnr.pnr(Metric::Rtt) << " relayed=" << rp.relayed_fraction() << "\n";
  run_via(0.03, 0.1, true, 0.5, "via default");
  run_via(0.0, 0.1, true, 0.5, "via eps0");
  run_via(0.03, 0.02, true, 0.5, "via coef0.02");
  run_via(0.0, 0.02, true, 0.5, "via eps0 coef0.02");
  run_via(0.03, 0.1, true, 0.8, "via carry0.8");
  run_via(0.03, 0.05, true, 0.8, "via coef.05 carry0.8");
  return 0;
}
