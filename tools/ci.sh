#!/usr/bin/env bash
# CI entry point: tier-1 verify (full build + ctest) plus a strict
# -Wall -Wextra -Werror compile of the telemetry subsystem and its tests.
# Usage: tools/ci.sh [build-dir]   (default: build-ci)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-ci}"

echo "== tier-1: configure + build + ctest =="
cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

echo "== strict: -Werror build of the obs subsystem =="
cmake -B "$BUILD_DIR-werror" -S . -DVIA_WERROR=ON
cmake --build "$BUILD_DIR-werror" -j --target via_obs test_obs

echo "== ci.sh: all green =="
