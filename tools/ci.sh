#!/usr/bin/env bash
# CI entry point: tier-1 verify (full build + ctest), an io_uring backend
# smoke (uring-filtered reactor tests, degrading to an explicit SKIP line
# on kernels without io_uring), a strict
# -Wall -Wextra -Werror compile of the telemetry subsystem and its tests,
# and a Release (-O2 -DNDEBUG) bench smoke that emits BENCH_core.json and
# gates it against bench/thresholds.json (failing, tools/check_bench.py;
# the bench is retried a couple of times so a transient load spike on the
# runner does not fail the pipeline — a real regression fails every try).
# Set VIA_CI_TSAN=1 to additionally run the threaded tests (including the
# reactor worker hammer in test_reactor) under ThreadSanitizer,
# and VIA_CI_ASAN=1 to run the chaos/fault/RPC/federation tests under
# ASan+UBSan;
# the ASan stage dumps flight-recorder + span-buffer JSONL into
# $BUILD_DIR-asan/flight-dump/ when a test fails (uploaded as CI artifacts).
# Usage: tools/ci.sh [build-dir]   (default: build-ci)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-ci}"

echo "== tier-1: configure + build + ctest =="
cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

echo "== uring: io_uring backend smoke (§6j) =="
# The tier-1 ctest pass already runs the backend-parameterized reactor
# suite (uring cases self-skip without kernel support); this stage makes
# the outcome explicit in the log: either the uring-filtered tests run, or
# CI prints a SKIP line — never a silent pass on a kernel without io_uring.
cmake --build "$BUILD_DIR" -j --target via_controller test_reactor
if "$BUILD_DIR/apps/via_controller" --probe-backend uring; then
  "$BUILD_DIR/tests/test_reactor" --gtest_filter='*uring*:*Uring*'
else
  echo "ci.sh: SKIP io_uring smoke — kernel lacks io_uring; epoll paths still covered by tier-1"
fi

echo "== strict: -Werror build of the obs subsystem =="
cmake -B "$BUILD_DIR-werror" -S . -DVIA_WERROR=ON
cmake --build "$BUILD_DIR-werror" -j --target via_obs test_obs

echo "== release: -O2 -DNDEBUG bench_micro_core smoke + BENCH_core.json =="
cmake -B "$BUILD_DIR-release" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR-release" -j --target bench_micro_core
bench_ok=0
for attempt in 1 2 3; do
  echo "-- bench attempt $attempt --"
  VIA_BENCH_JSON="$BUILD_DIR-release/BENCH_core.json" VIA_BENCH_SWEEP_SCALE=small \
    "$BUILD_DIR-release/bench/bench_micro_core" --benchmark_min_time=0.1
  test -s "$BUILD_DIR-release/BENCH_core.json"
  grep -q '"sweep_identical": true' "$BUILD_DIR-release/BENCH_core.json"
  echo "== bench regression gate (failing, bench/thresholds.json) =="
  if python3 tools/check_bench.py "$BUILD_DIR-release/BENCH_core.json" bench/thresholds.json; then
    bench_ok=1
    break
  fi
done
if [[ "$bench_ok" != "1" ]]; then
  echo "ci.sh: bench regression gate failed on every attempt" >&2
  exit 1
fi
echo "BENCH_core.json:"
cat "$BUILD_DIR-release/BENCH_core.json"

echo "== release: bench_scale smoke (1M calls / 100k pairs, bounded RSS) =="
# The §6i streaming-scale smoke: a bounded-memory replay that must finish
# under the RSS cap (bench_scale exits nonzero on a VmHWM breach) and is
# gated warn-only against bench/thresholds_scale.json.
cmake --build "$BUILD_DIR-release" -j --target bench_scale
"$BUILD_DIR-release/bench/bench_scale" --calls 1000000 --pairs 100000 \
  --rss-cap-mb 1024 --json "$BUILD_DIR-release/BENCH_scale.json"
echo "== scale regression gate (bench/thresholds_scale.json) =="
python3 tools/check_bench.py "$BUILD_DIR-release/BENCH_scale.json" bench/thresholds_scale.json
echo "BENCH_scale.json:"
cat "$BUILD_DIR-release/BENCH_scale.json"

if [[ "${VIA_CI_TSAN:-0}" == "1" ]]; then
  echo "== tsan: test_parallel + test_concurrent_policy + test_reactor + test_federation under ThreadSanitizer =="
  cmake -B "$BUILD_DIR-tsan" -S . -DVIA_TSAN=ON
  cmake --build "$BUILD_DIR-tsan" -j --target test_parallel test_concurrent_policy test_reactor test_federation
  "$BUILD_DIR-tsan/tests/test_parallel"
  "$BUILD_DIR-tsan/tests/test_concurrent_policy"
  "$BUILD_DIR-tsan/tests/test_reactor"
  "$BUILD_DIR-tsan/tests/test_federation"
fi

if [[ "${VIA_CI_ASAN:-0}" == "1" ]]; then
  echo "== asan: chaos + fault + rpc + federation tests under ASan+UBSan =="
  cmake -B "$BUILD_DIR-asan" -S . -DVIA_ASAN=ON
  cmake --build "$BUILD_DIR-asan" -j --target test_chaos test_faults test_rpc test_federation
  # On failure each binary dumps its process-wide flight recorder and span
  # buffer as JSONL into this directory (tests/flight_dump.h); the GitHub
  # workflow uploads it as an artifact so a red chaos run is debuggable.
  mkdir -p "$BUILD_DIR-asan/flight-dump"
  VIA_FLIGHT_DUMP="$BUILD_DIR-asan/flight-dump" "$BUILD_DIR-asan/tests/test_chaos"
  VIA_FLIGHT_DUMP="$BUILD_DIR-asan/flight-dump" "$BUILD_DIR-asan/tests/test_faults"
  VIA_FLIGHT_DUMP="$BUILD_DIR-asan/flight-dump" "$BUILD_DIR-asan/tests/test_rpc"
  VIA_FLIGHT_DUMP="$BUILD_DIR-asan/flight-dump" "$BUILD_DIR-asan/tests/test_federation"
fi

echo "== ci.sh: all green =="
