#include <iostream>
#include <unordered_set>
#include "core/budget.h"
#include "sim/experiment.h"
using namespace via;
// Expose benefit distribution by instrumenting a run manually.
int main() {
  auto setup = Experiment::default_setup(Experiment::Scale::Small);
  Experiment exp(setup);
  ViaConfig c; c.budget = {.fraction = 0.5, .aware = true};
  auto p = exp.make_via(Metric::Rtt, c);
  // Wrap: count benefits by intercepting pair states via top_k_for? Simpler:
  // rerun choose over arrivals manually after a first run to sample states.
  RunResult r = exp.run(*p);
  // Sample predicted benefits across pairs on the last day.
  auto& gt = exp.ground_truth();
  int zero=0, pos=0, neg=0; double sum=0;
  std::unordered_set<std::uint64_t> seen;
  for (const auto& a : exp.arrivals()) {
    if (a.day() != setup.trace.days-1) continue;
    if (!seen.insert(a.pair_key()).second) continue;
    CallContext ctx; ctx.id=a.id; ctx.time=a.time; ctx.src_as=a.src_as; ctx.dst_as=a.dst_as;
    ctx.key_src=a.src_as; ctx.key_dst=a.dst_as;
    ctx.options = gt.candidate_options(a.src_as, a.dst_as);
    auto direct_pred = p->predictor().predict(a.src_as, a.dst_as, 0, Metric::Rtt);
    auto topk = p->top_k_for(ctx);
    if (!direct_pred.valid) { zero++; continue; }
    if (topk.empty()) { zero++; continue; }
    double best=1e18; for (auto& t : topk) best = std::min(best, t.pred.mean);
    double benefit = direct_pred.mean - best;
    sum += benefit; (benefit > 0 ? pos : neg)++;
  }
  std::cout << "pairs: zero(no pred)=" << zero << " pos=" << pos << " neg=" << neg << "\n";
  return 0;
}
