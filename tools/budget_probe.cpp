#include <iostream>
#include "sim/experiment.h"
using namespace via;
int main() {
  auto setup = Experiment::default_setup(Experiment::Scale::Small);
  Experiment exp(setup);
  for (double b : {0.5, 0.7}) {
    ViaConfig c; c.budget = {.fraction = b, .aware = true};
    auto p = exp.make_via(Metric::Rtt, c);
    RunResult r = exp.run(*p);
    const auto& s = p->stats();
    std::cout << "B=" << b << " relayed=" << r.relayed_fraction()
              << " budget_denied=" << s.budget_denied
              << " bandit=" << s.bandit_served << " cold=" << s.cold_start_direct
              << " eps=" << s.epsilon_explored << " chose_direct=" << s.chose_direct << "\n";
  }
  return 0;
}
