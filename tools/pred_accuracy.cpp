#include <iostream>
#include <unordered_set>
#include <cmath>
#include "core/predictor.h"
#include "sim/experiment.h"
using namespace via;
int main() {
  auto setup = Experiment::default_setup(Experiment::Scale::Small);
  setup.trace.total_calls = 80'000; setup.trace.days = 14;
  Experiment exp(setup);
  auto& gt = exp.ground_truth();
  // Build day-(d-1) history from a mixed assignment, predict day d means.
  Rng rng(5);
  std::int64_t within20 = 0, over50 = 0, total = 0;
  for (int d = 1; d < 14; d += 3) {
    HistoryWindow window(&gt.option_table());
    for (const auto& a : exp.arrivals()) {
      if (a.day() != d - 1) continue;
      auto opts = gt.candidate_options(a.src_as, a.dst_as);
      OptionId opt = rng.bernoulli(0.4) ? 0 : opts[rng.uniform_index(opts.size())];
      Observation o; o.id=a.id; o.time=a.time; o.src_as=a.src_as; o.dst_as=a.dst_as;
      o.option=opt; o.ingress=gt.transit_ingress(a.src_as, opt);
      o.perf = gt.sample_call(a.id, a.src_as, a.dst_as, opt, a.time);
      window.add(o);
    }
    Predictor pred(gt.option_table(), [&gt](RelayId x, RelayId y){ return gt.backbone(x,y); });
    pred.train(window);
    std::unordered_set<std::uint64_t> seen;
    for (const auto& a : exp.arrivals()) {
      if (a.day() != d) continue;
      if (!seen.insert(a.pair_key()).second) continue;
      for (OptionId opt : gt.candidate_options(a.src_as, a.dst_as)) {
        auto p = pred.predict(a.src_as, a.dst_as, opt, Metric::Rtt);
        if (!p.valid) continue;
        const double actual = gt.day_mean(a.src_as, a.dst_as, opt, d).rtt_ms;
        const double err = std::abs(p.mean - actual) / actual;
        ++total; if (err <= 0.20) ++within20; if (err >= 0.50) ++over50;
      }
    }
  }
  std::cout << "predictions=" << total
            << " within20%=" << 100.0*within20/total
            << "% over50%=" << 100.0*over50/total << "% (paper: 71% / 14%)\n";
  return 0;
}
