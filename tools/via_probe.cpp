#include <iostream>
#include "obs/export.h"
#include "sim/experiment.h"
using namespace via;
int main() {
  auto setup = Experiment::default_setup(Experiment::Scale::Small);
  setup.trace.total_calls = 60'000; setup.trace.days = 14;
  Experiment exp(setup);
  auto via_policy = exp.make_via(Metric::Rtt);
  auto def = exp.make_default();
  auto expl = exp.make_exploration_only(Metric::Rtt);
  auto oracle = exp.make_oracle(Metric::Rtt);
  RunResult rv = exp.run(*via_policy);
  RunResult rd = exp.run(*def);
  RunResult re = exp.run(*expl);
  RunResult ro = exp.run(*oracle);
  const auto& s = via_policy->stats();
  std::cout << "via calls=" << s.calls << " eps=" << s.epsilon_explored
            << " bandit=" << s.bandit_served << " cold=" << s.cold_start_direct
            << " budget_denied=" << s.budget_denied
            << "\n direct=" << s.chose_direct << " bounce=" << s.chose_bounce
            << " transit=" << s.chose_transit << "\n";
  std::cout << "PNR rtt: default=" << rd.pnr.pnr(Metric::Rtt)
            << " via=" << rv.pnr.pnr(Metric::Rtt)
            << " explore=" << re.pnr.pnr(Metric::Rtt)
            << " oracle=" << ro.pnr.pnr(Metric::Rtt) << "\n";
  std::cout << "relayed: via=" << rv.relayed_fraction() << " explore=" << re.relayed_fraction() << "\n";
  std::cout << "\n== via run telemetry ==\n";
  via::obs::render_table(rv.telemetry, std::cout);
  std::cout << "decision trace: " << rv.decisions.size() << " events; last 3:\n";
  for (std::size_t i = rv.decisions.size() > 3 ? rv.decisions.size() - 3 : 0;
       i < rv.decisions.size(); ++i) {
    std::cout << "  " << rv.decisions[i].to_jsonl() << "\n";
  }
  return 0;
}
