#!/usr/bin/env python3
"""Compare a freshly generated BENCH_core.json against bench/thresholds.json.

Usage: tools/check_bench.py BENCH_core.json [thresholds.json]

Warn-only regression gate: microbenchmark numbers are noisy across CI
machines, so a regression prints a prominent warning and the script still
exits 0.  Exit status is nonzero only for malformed input (missing files,
unparseable JSON) so CI catches a broken bench pipeline without flaking on
timing variance.

Threshold semantics (bench/thresholds.json):
  - keys ending in `_ns` or `_seconds` are lower-is-better; a run is
    flagged when it exceeds the threshold by more than the tolerance.
  - keys ending in `_mops` or `_speedup` are higher-is-better; a run is
    flagged when it falls short by more than the tolerance.
  - other numeric keys are compared lower-is-better by default.
  - keys present in the thresholds but absent from the run (e.g. a
    filtered-out benchmark) are reported as "missing", also warn-only.

The default tolerance is 25% either way; a `_tolerance` key in the
thresholds file (fraction, e.g. 0.25) overrides it globally.
"""

import json
import sys

DEFAULT_TOLERANCE = 0.25
HIGHER_IS_BETTER_SUFFIXES = ("_mops", "_speedup")


def is_higher_better(key: str) -> bool:
    return key.endswith(HIGHER_IS_BETTER_SUFFIXES)


def main(argv: list) -> int:
    if len(argv) < 2 or len(argv) > 3:
        print(__doc__)
        return 2
    bench_path = argv[1]
    thresholds_path = argv[2] if len(argv) == 3 else "bench/thresholds.json"

    try:
        with open(bench_path) as f:
            bench = json.load(f)
        with open(thresholds_path) as f:
            thresholds = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_bench: cannot read inputs: {e}", file=sys.stderr)
        return 1

    tolerance = thresholds.get("_tolerance", DEFAULT_TOLERANCE)
    regressions = []
    missing = []
    checked = 0

    for key, limit in sorted(thresholds.items()):
        if key.startswith("_") or not isinstance(limit, (int, float)):
            continue
        value = bench.get(key)
        if not isinstance(value, (int, float)):
            missing.append(key)
            continue
        checked += 1
        if is_higher_better(key):
            floor = limit * (1.0 - tolerance)
            if value < floor:
                regressions.append(
                    f"{key}: {value:.4g} < {floor:.4g} "
                    f"(baseline {limit:.4g}, higher is better)"
                )
        else:
            ceiling = limit * (1.0 + tolerance)
            if value > ceiling:
                regressions.append(
                    f"{key}: {value:.4g} > {ceiling:.4g} "
                    f"(baseline {limit:.4g}, lower is better)"
                )

    print(
        f"check_bench: {checked} keys checked against {thresholds_path} "
        f"(tolerance {tolerance:.0%})"
    )
    for key in missing:
        print(f"check_bench: WARNING: key missing from run: {key}")
    if regressions:
        print(f"check_bench: WARNING: {len(regressions)} possible regression(s):")
        for line in regressions:
            print(f"  {line}")
        print(
            "check_bench: warn-only — timing noise is expected across machines; "
            "investigate if this repeats, and refresh bench/thresholds.json "
            "after intentional performance changes."
        )
    else:
        print("check_bench: all tracked benchmarks within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
