#!/usr/bin/env python3
"""Compare a freshly generated BENCH_core.json against bench/thresholds.json.

Usage: tools/check_bench.py BENCH_core.json [thresholds.json]

Failing regression gate: a row pinned in the thresholds file that regresses
past the tolerance makes the script exit 1, so CI fails instead of silently
drifting.  Rows listed in the thresholds' `_warn_only` array (differences of
noisy numbers, machine-sensitive throughput rows) still print a prominent
warning but never fail the run.  Keys missing from the run (e.g. a
filtered-out benchmark) are reported but warn-only, so partial bench runs
stay usable locally.

Rows listed in `_multicore_only` measure parallel speedups or multi-thread
throughput; on a single-core runner they legitimately degenerate (a 0.96x
sweep_speedup on one core is physics, not a regression).  The bench run
records the producing box's core count in the `cores` key of
BENCH_core.json; when it is < 2 (or absent, for runs predating the field),
`_multicore_only` rows are downgraded to warnings instead of failures.

Rows listed in `_optional` may legitimately be absent from a run — io_uring
rows on kernels without io_uring, high-connection sweep points under
VIA_BENCH_SWEEP_SCALE=small.  A missing `_optional` row prints an explicit
SKIP line (never a warning); when the row IS present it is checked like any
other (pair it with `_warn_only` to keep it from failing the gate).

Threshold semantics (bench/thresholds.json):
  - keys ending in `_ns` or `_seconds` are lower-is-better; a run is
    flagged when it exceeds the threshold by more than the tolerance.
  - keys ending in `_mops`, `_speedup`, or `_rps` are higher-is-better; a
    run is flagged when it falls short by more than the tolerance.
  - other numeric keys are compared lower-is-better by default — this is
    what memory rows rely on (`scale_peak_rss_mb`, `*_bytes_per_pair` in
    bench/thresholds_scale.json): a run using more memory than baseline
    plus tolerance is flagged.

The default tolerance is 25% either way; a `_tolerance` key in the
thresholds file (fraction, e.g. 0.25) overrides it globally.  After an
intentional performance change, refresh the affected baselines in the same
commit so the gate tracks the new expected cost.
"""

import json
import sys

DEFAULT_TOLERANCE = 0.25
HIGHER_IS_BETTER_SUFFIXES = ("_mops", "_speedup", "_rps")


def is_higher_better(key: str) -> bool:
    # Suffix or infix: throughput rows like reactor_choose_rps_64c carry
    # the unit mid-key with the sweep point trailing.
    return key.endswith(HIGHER_IS_BETTER_SUFFIXES) or any(
        f"{tag}_" in key for tag in HIGHER_IS_BETTER_SUFFIXES
    )


def main(argv: list) -> int:
    if len(argv) < 2 or len(argv) > 3:
        print(__doc__)
        return 2
    bench_path = argv[1]
    thresholds_path = argv[2] if len(argv) == 3 else "bench/thresholds.json"

    try:
        with open(bench_path) as f:
            bench = json.load(f)
        with open(thresholds_path) as f:
            thresholds = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_bench: cannot read inputs: {e}", file=sys.stderr)
        return 1

    tolerance = thresholds.get("_tolerance", DEFAULT_TOLERANCE)
    warn_only = set(thresholds.get("_warn_only", []))
    multicore_only = set(thresholds.get("_multicore_only", []))
    optional = set(thresholds.get("_optional", []))
    cores = bench.get("cores")
    single_core = not isinstance(cores, (int, float)) or cores < 2
    if single_core and multicore_only:
        print(
            f"check_bench: cores={cores!r} in {bench_path}; "
            f"{len(multicore_only)} multicore-only row(s) downgraded to warnings"
        )
        warn_only |= multicore_only
    failures = []
    warnings = []
    missing = []
    skipped = []
    checked = 0

    for key, limit in sorted(thresholds.items()):
        if key.startswith("_") or not isinstance(limit, (int, float)):
            continue
        value = bench.get(key)
        if not isinstance(value, (int, float)):
            (skipped if key in optional else missing).append(key)
            continue
        checked += 1
        if is_higher_better(key):
            floor = limit * (1.0 - tolerance)
            if value < floor:
                message = (
                    f"{key}: {value:.4g} < {floor:.4g} "
                    f"(baseline {limit:.4g}, higher is better)"
                )
                (warnings if key in warn_only else failures).append(message)
        else:
            ceiling = limit * (1.0 + tolerance)
            if value > ceiling:
                message = (
                    f"{key}: {value:.4g} > {ceiling:.4g} "
                    f"(baseline {limit:.4g}, lower is better)"
                )
                (warnings if key in warn_only else failures).append(message)

    print(
        f"check_bench: {checked} keys checked against {thresholds_path} "
        f"(tolerance {tolerance:.0%})"
    )
    for key in skipped:
        print(f"check_bench: SKIP (optional row absent from run): {key}")
    for key in missing:
        print(f"check_bench: WARNING: key missing from run: {key}")
    for line in warnings:
        print(f"check_bench: WARNING (warn-only row): {line}")
    if failures:
        print(f"check_bench: FAIL: {len(failures)} regression(s) past tolerance:")
        for line in failures:
            print(f"  {line}")
        print(
            "check_bench: if the slowdown is intentional, refresh "
            "bench/thresholds.json in the same commit; if a row is "
            "inherently noisy, move it to _warn_only."
        )
        return 1
    print("check_bench: all tracked benchmarks within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
