// Country report: a network-operations view.  Generates a default-routed
// trace, diagnoses where poor calls live (the paper's Section 2 analysis),
// then shows what a Via rollout would do for the worst countries.
//
//   $ ./example_country_report
#include <algorithm>
#include <iostream>

#include "analysis/section2.h"
#include "sim/experiment.h"
#include "util/table.h"

int main() {
  using namespace via;

  Experiment::Setup setup = Experiment::default_setup(Experiment::Scale::Small);
  setup.trace.total_calls = 120'000;
  setup.trace.days = 14;
  Experiment exp(setup);

  std::cout << "Diagnosing " << setup.trace.total_calls << " calls across "
            << exp.world().num_ases() << " ASes...\n";

  // 1. Where do poor calls come from?
  const auto records = exp.generator().generate_default_routed();
  const PnrBreakdown breakdown = pnr_breakdown(records);

  std::cout << "\n--- Diagnosis (default routing) ---\n";
  TextTable diag({"slice", "calls", "PNR (at least one bad metric)"});
  diag.row().cell("all calls").cell_int(breakdown.all.total()).cell_pct(breakdown.all.pnr_any());
  diag.row()
      .cell("international")
      .cell_int(breakdown.international.total())
      .cell_pct(breakdown.international.pnr_any());
  diag.row()
      .cell("domestic")
      .cell_int(breakdown.domestic.total())
      .cell_pct(breakdown.domestic.pnr_any());
  diag.print(std::cout);

  const auto contribution = aspair_contribution(records);
  if (!contribution.cumulative_share.empty()) {
    const auto head = std::max<std::size_t>(
        1, static_cast<std::size_t>(0.01 * static_cast<double>(contribution.total_pairs)));
    std::cout << "worst 1% of AS pairs contribute only "
              << format_double(100.0 * contribution.cumulative_share[head - 1], 1)
              << "% of poor calls -> no localized fix exists.\n";
  }

  // 2. What would Via do?  Run default vs Via and dissect per country.
  std::cout << "\n--- Simulated Via rollout ---\n";
  RunConfig run_config;
  run_config.collect_by_country = true;
  auto baseline = exp.make_default();
  auto via_policy = exp.make_via(Metric::Rtt);
  const RunResult base = exp.run(*baseline, run_config);
  const RunResult mine = exp.run(*via_policy, run_config);

  std::vector<std::pair<CountryId, double>> ranked;
  for (const auto& [country, acc] : base.by_country) {
    if (acc.total() >= 500) ranked.emplace_back(country, acc.pnr_any());
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });

  TextTable report({"country", "intl calls", "PNR before", "PNR with Via", "reduction"});
  const auto countries = exp.world().countries();
  for (std::size_t i = 0; i < std::min<std::size_t>(ranked.size(), 12); ++i) {
    const CountryId c = ranked[i].first;
    const auto& before = base.by_country.at(c);
    const auto it = mine.by_country.find(c);
    const double after = it != mine.by_country.end() ? it->second.pnr_any() : 0.0;
    report.row()
        .cell(countries[static_cast<std::size_t>(c)].name)
        .cell_int(before.total())
        .cell_pct(before.pnr_any())
        .cell_pct(after)
        .cell(format_double(relative_improvement_pct(before.pnr_any(), after), 1) + "%");
  }
  report.print(std::cout);

  std::cout << "\nGlobal PNR: " << format_double(100.0 * base.pnr.pnr_any(), 1) << "% -> "
            << format_double(100.0 * mine.pnr.pnr_any(), 1) << "% ("
            << format_double(relative_improvement_pct(base.pnr.pnr_any(), mine.pnr.pnr_any()),
                             1)
            << "% reduction), relaying "
            << format_double(100.0 * mine.relayed_fraction(), 1) << "% of calls.\n";
  return 0;
}
