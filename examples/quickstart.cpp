// Quickstart: build a synthetic world, generate a workload, and compare
// Via's prediction-guided exploration against the default-routing baseline
// and the oracle on the RTT metric.
//
//   $ ./example_quickstart
//
// This is the smallest end-to-end tour of the public API:
//   Experiment -> policies -> SimulationEngine -> PNR / percentile reports.
#include <iostream>

#include "sim/experiment.h"
#include "util/table.h"

int main() {
  using namespace via;

  // 1. Build the world, ground truth, and workload (one bundle).
  Experiment::Setup setup = Experiment::default_setup(Experiment::Scale::Small);
  setup.trace.total_calls = 60'000;
  Experiment exp(setup);

  std::cout << "world: " << exp.world().num_ases() << " ASes, "
            << exp.world().num_relays() << " relays, " << exp.arrivals().size()
            << " calls over " << setup.trace.days << " days\n";

  // 2. Run the three strategies on the same trace.
  const Metric target = Metric::Rtt;
  auto default_policy = exp.make_default();
  auto via_policy = exp.make_via(target);
  auto oracle_policy = exp.make_oracle(target);

  const RunResult base = exp.run(*default_policy);
  const RunResult mine = exp.run(*via_policy);
  const RunResult best = exp.run(*oracle_policy);

  // 3. Report PNR (fraction of calls with poor network performance).
  TextTable table({"strategy", "PNR(RTT)", "PNR(any bad)", "relayed%", "median RTT"});
  for (const RunResult* r : {&base, &mine, &best}) {
    auto values = r->values[metric_index(target)];
    std::sort(values.begin(), values.end());
    table.row()
        .cell(r->policy_name)
        .cell_pct(r->pnr.pnr(target))
        .cell_pct(r->pnr.pnr_any())
        .cell_pct(r->relayed_fraction())
        .cell(percentile_sorted(values, 50.0), 1);
  }
  table.print(std::cout);

  const PnrComparison vs_default = compare_pnr(base, mine);
  std::cout << "\nVia cuts PNR(RTT) by " << format_double(vs_default.reduction_pct[0], 1)
            << "% vs default routing (paper reports 39-45% at full scale).\n";
  return 0;
}
