// Deployment demo: runs a real Via controller behind a TCP server on
// localhost and a fleet of instrumented client pairs against it — the
// Section 5.5 experiment as a library user would run it.
//
//   $ ./example_deployment_demo [client_pairs] [eval_calls_per_pair]
//
// Shows the two-phase protocol (orchestrated measurement calls, then
// controller-driven evaluation calls) and the resulting sub-optimality CDF.
#include <cstdlib>
#include <iostream>

#include "rpc/testbed.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace via;

  TestbedConfig config;
  if (argc > 1) config.client_pairs = std::max(2, std::atoi(argv[1]));
  if (argc > 2) config.eval_calls_per_pair = std::max(5, std::atoi(argv[2]));

  std::cout << "Starting a Via controller on localhost and " << config.client_pairs
            << " instrumented client pairs...\n";
  std::cout << "Phase 1: back-to-back measurement calls over every relaying option\n";
  std::cout << "Phase 2: " << config.eval_calls_per_pair
            << " controller-routed calls per pair\n\n";

  const TestbedResult result = run_testbed(config);

  std::cout << "measurement calls: " << result.measurement_calls << "\n";
  std::cout << "evaluation calls:  " << result.eval_calls << "\n\n";

  TextTable table({"sub-optimality vs oracle", "fraction of calls"});
  for (const double x : {0.0, 0.05, 0.1, 0.2, 0.5}) {
    table.row()
        .cell("within " + format_double(100.0 * x, 0) + "%")
        .cell_pct(result.fraction_within(x));
  }
  table.print(std::cout);

  std::cout << "\nVia picked the oracle's exact option on "
            << format_double(100.0 * result.fraction_best(), 1)
            << "% of calls; when it misses, it lands close (the paper's "
               "Figure 18 shape: ~70% of calls within 20%).\n";
  return 0;
}
