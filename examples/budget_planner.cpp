// Budget planner: how much managed-backbone capacity does a Via rollout
// need?  Sweeps the relaying budget and reports quality gained per unit of
// relayed traffic, recommending the knee of the curve (the paper's §4.6 /
// Figure 16 analysis turned into a planning tool).
//
//   $ ./example_budget_planner
#include <iostream>

#include "sim/experiment.h"
#include "util/table.h"

int main() {
  using namespace via;

  Experiment::Setup setup = Experiment::default_setup(Experiment::Scale::Small);
  setup.trace.total_calls = 80'000;
  Experiment exp(setup);

  auto baseline = exp.make_default();
  const RunResult base = exp.run(*baseline);
  const double base_pnr = base.pnr.pnr_any();
  std::cout << "Default routing: " << format_double(100.0 * base_pnr, 1)
            << "% of calls see at least one poor metric.\n\n";

  TextTable table({"budget", "relayed traffic", "PNR(any bad)", "PNR reduction",
                   "reduction per 10% relayed"});
  double best_efficiency = 0.0;
  double recommended = 0.0;
  double unlimited_cut = 0.0;

  for (const double budget : {0.05, 0.1, 0.2, 0.3, 0.5, 0.75, 1.0}) {
    ViaConfig config;
    config.budget = {.fraction = budget, .aware = true};
    auto policy = exp.make_via(Metric::Rtt, config);
    const RunResult r = exp.run(*policy);
    const double cut = relative_improvement_pct(base_pnr, r.pnr.pnr_any());
    const double relayed = r.relayed_fraction();
    const double efficiency = relayed > 0.0 ? cut / (10.0 * relayed) : 0.0;
    table.row()
        .cell_pct(budget, 0)
        .cell_pct(relayed)
        .cell_pct(r.pnr.pnr_any())
        .cell(format_double(cut, 1) + "%")
        .cell(format_double(efficiency, 2) + "%");
    if (budget == 1.0) unlimited_cut = cut;
    if (efficiency > best_efficiency) {
      best_efficiency = efficiency;
      recommended = budget;
    }
  }
  table.print(std::cout);

  std::cout << "\nMost efficient budget: " << format_double(100.0 * recommended, 0)
            << "% of calls (diminishing returns beyond; unlimited relaying "
               "yields "
            << format_double(unlimited_cut, 1)
            << "% PNR reduction).\nThe paper finds ~half of the maximum "
               "benefit at a 30% budget when selection is budget-aware.\n";
  return 0;
}
